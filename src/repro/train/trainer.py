"""The training loop: simulated multi-rank ZeRO-3 post-training runs.

Responsibilities:

* build the full stack (KB → corpus → tokenizer → model → tailored
  param groups → ZeRO engine → scheduler → strategy callbacks);
* run deterministic steps — the batch at step ``t`` is a pure function
  of ``(seed, t, rank, accum_index)``, so resumed runs replay the exact
  data order of uninterrupted ones;
* write full/partial checkpoints per the strategy, with simulated-clock
  charging for compute and I/O;
* resume from any *complete* checkpoint (including LLMTailor merges),
  and auto-recover from partial trails via :meth:`auto_recover`; resume
  is *elastic* — a run configured with ``world_size=M`` loads a
  checkpoint written at any world size N (the reader reshards the
  optimizer payloads N→M via :mod:`repro.dist.reshard`), and the
  world-size-invariant training math keeps the loss curve unchanged;
* survive a :class:`~repro.dist.faults.FaultPlan`:
  :class:`ChaosSupervisor` runs training legs under injected faults —
  on a rank failure it shrinks the world N→N-1, resumes elastically
  from the last complete checkpoint (or auto-merges the partial trail),
  repairs bitrot the per-group CRCs catch by re-reading replicas, and
  records everything in a :class:`~repro.dist.faults.FaultTimeline`
  attached to the final :class:`TrainResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..autograd.compile import BackwardTape
from ..core.tailor import LLMTailor
from ..data.datasets import Batch, CPTDataset, SFTDataset
from ..data.facts import MedicalKB
from ..data.synthetic import medqa_like_pairs, pubmed_like_corpus
from ..data.tokenizer import WordTokenizer
from ..core.groups import tailored_param_groups
from ..dist.faults import ChaosComm, FaultPlan, FaultTimeline, repair_from_replicas
from ..dist.zero import ZeroStage3Engine
from ..io.layout import CheckpointPaths, checkpoint_dir, list_checkpoint_steps, read_latest
from ..io.reader import load_checkpoint
from ..io.storage import Storage
from ..io.writer import save_checkpoint
from ..nn.config import ModelConfig, get_config
from ..nn.model import CausalLM, build_model
from ..optim.lr_scheduler import build_scheduler
from ..optim.optimizer import clip_grad_norm_
from ..strategies.base import build_strategy
from ..util.errors import CheckpointError, MergeError, SimulatedFailure, TrainingError
from ..util.logging import get_logger
from .callbacks import (
    Callback,
    ChaosCallback,
    CheckpointCallback,
    FailureInjector,
    LoggingCallback,
)
from .config import TrainConfig
from .state import TrainerState

__all__ = ["ChaosSupervisor", "Trainer", "TrainResult", "train_with_faults"]

log = get_logger("train.trainer")


@dataclass
class TrainResult:
    """Outcome of a (possibly interrupted) training run."""

    final_step: int
    final_train_loss: float
    final_eval_loss: float
    interrupted_at: int | None = None
    checkpoints: list[int] = field(default_factory=list)
    clock: dict[str, float] = field(default_factory=dict)
    checkpoint_time_fraction: float = 0.0
    total_checkpoint_bytes: float = 0.0
    # Cumulative ring-model collective traffic from the engine's SimComm
    # (bytes/calls per op), so the sharding tax is part of the run record.
    comm_traffic: dict[str, dict] = field(default_factory=dict)
    # The rank whose scheduled death interrupted the leg (fault plans
    # only); the supervisor shrinks the world when this is set.
    failed_rank: int | None = None
    # Flight recorder of injected faults and recoveries (fault plans only).
    fault_timeline: FaultTimeline | None = None

    def summary(self) -> str:
        """One-line recap: status, losses, checkpoint-time fraction."""
        status = (
            f"failed at step {self.interrupted_at}"
            if self.interrupted_at is not None
            else f"completed at step {self.final_step}"
        )
        return (
            f"training {status}: train loss {self.final_train_loss:.4f}, "
            f"eval loss {self.final_eval_loss:.4f}, "
            f"ckpt time fraction {self.checkpoint_time_fraction * 100:.2f}%"
        )


class Trainer:
    """Deterministic simulated ZeRO-3 training runs (see module docs).

    Built from one :class:`~repro.train.config.TrainConfig`; an optional
    ``fault_plan`` attaches the chaos engine to this leg — the engine's
    collectives are wrapped in a :class:`~repro.dist.faults.ChaosComm`
    charging penalized time into the simulated clock, and a
    :class:`~repro.train.callbacks.ChaosCallback` applies scheduled
    bitrot and rank failures.  Multi-leg recovery (shrink + resume) is
    :class:`ChaosSupervisor`'s job, not the trainer's.
    """

    def __init__(
        self,
        config: TrainConfig,
        *,
        fault_plan: FaultPlan | None = None,
        fault_timeline: FaultTimeline | None = None,
        _chaos_pending: tuple[list, list] | None = None,
    ) -> None:
        self.config = config
        self.storage = Storage(config.output_dir)

        # Data substrate (shared KB drives training *and* evaluation).
        self.kb = MedicalKB.build(config.kb_seed)
        model_cfg_base = get_config(config.model)
        if config.task == "cpt":
            texts = pubmed_like_corpus(self.kb, n_docs=config.n_corpus_docs, seed=config.seed)
        else:
            pairs = medqa_like_pairs(self.kb, n_pairs=config.n_sft_pairs, seed=config.seed)
            texts = [p.question + " " + p.answer for p in pairs]
        self.tokenizer = WordTokenizer.train(texts, vocab_size=model_cfg_base.vocab_size)

        # Model vocabulary matches the tokenizer exactly.
        self.model_config: ModelConfig = model_cfg_base.replace(
            vocab_size=self.tokenizer.vocab_size,
            max_position_embeddings=max(model_cfg_base.max_position_embeddings, config.seq_len),
        )
        self.model: CausalLM = build_model(self.model_config, seed=config.seed)

        if config.task == "cpt":
            self.dataset: CPTDataset | SFTDataset = CPTDataset(
                texts, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )
        else:
            self.dataset = SFTDataset(
                pairs, self.tokenizer, seq_len=config.seq_len, seed=config.seed
            )

        # Regroup the optimizer BEFORE training (paper §4.1), then shard.
        groups = tailored_param_groups(self.model, self.model_config, config.weight_decay)
        self.engine = ZeroStage3Engine(
            self.model,
            self.model_config,
            groups,
            world_size=config.world_size,
            lr=config.lr,
            betas=config.betas,
            eps=config.eps,
        )
        self.scheduler = build_scheduler(
            config.scheduler,
            self.engine.reference_optimizer,
            warmup_steps=config.warmup_steps,
            total_steps=config.total_steps,
        )

        # Opt-in backward-tape compiler: record the first micro-batch's
        # backward, replay it for every later one (bitwise-identical).
        # Gradients are donated straight into the engine's reduce-scatter
        # staging buffers, so the tape's terminal writes are the
        # collective's inputs.
        self.tape: BackwardTape | None = None
        if config.compile:
            self.tape = BackwardTape(donate=self.engine.grad_donation_views())

        self.strategy = build_strategy(
            config.checkpoint_strategy,
            self.model_config,
            config.checkpoint_interval,
            **config.strategy_kwargs,
        )
        self.state = TrainerState()
        self.callbacks: list[Callback] = [
            LoggingCallback(config.log_every),
            CheckpointCallback(self.strategy),
        ]
        if config.failure_step is not None:
            self.callbacks.append(FailureInjector(config.failure_step))

        # Chaos engine attachment (fault plans): wrap the collectives in
        # the time-charging communicator and register the fault callback
        # last, so the step's checkpoint is on disk before bitrot or a
        # rank failure touches it.
        self.fault_plan = fault_plan
        self.fault_timeline = fault_timeline
        self._chaos: ChaosCallback | None = None
        if fault_plan is not None:
            if _chaos_pending is None:
                # Standalone use: the supervisor validates once up front,
                # legs after a shrink would fail re-validation (events may
                # reference ranks the smaller world no longer has).
                fault_plan.validate(config.world_size, config.total_steps)
            self.fault_timeline = fault_timeline or FaultTimeline()
            self.engine.comm = ChaosComm(
                self.engine.comm, fault_plan, clock=self.storage.clock
            )
            pending_failures, pending_bitrot = _chaos_pending or (None, None)
            self._chaos = ChaosCallback(
                fault_plan,
                self.fault_timeline,
                pending_failures=pending_failures,
                pending_bitrot=pending_bitrot,
            )
            self.callbacks.append(self._chaos)

    # -- paths --------------------------------------------------------------------

    @property
    def decision_log_path(self) -> Path:
        """Where the strategy's checkpoint decisions are persisted."""
        return Path(self.config.output_dir) / "ckpt_decisions.json"

    # -- one training step -----------------------------------------------------------

    def _micro_batch(self, step: int, rank: int, accum: int) -> Batch:
        tag = f"train/rank{rank}/acc{accum}"
        return self.dataset.batch_at_step(step, self.config.micro_batch_size, tag=tag)

    def train_step(self, step: int) -> float:
        """Forward/backward over every rank's micro-batches, then update."""
        cfg = self.config
        if self.fault_plan is not None:
            # Position the fault schedule before the step's collectives
            # so window-scoped penalties charge exactly their steps.
            self.engine.comm.set_step(step)
        self.engine.zero_grad()
        total_loss = 0.0
        n_micro = cfg.world_size * cfg.grad_accum_steps
        for rank in range(cfg.world_size):
            for accum in range(cfg.grad_accum_steps):
                batch = self._micro_batch(step, rank, accum)
                if self.tape is not None:
                    with self.tape.capture():
                        loss = self.model.loss(batch.input_ids, batch.labels)
                    self.tape.backward(loss)
                else:
                    loss = self.model.loss(batch.input_ids, batch.labels)
                    loss.backward()
                total_loss += loss.item()
        # Average accumulated gradients over all micro-batches.
        inv = 1.0 / n_micro
        for p in self.model.parameters():
            if p.grad is not None:
                p.grad *= inv
        if cfg.grad_clip > 0:
            clip_grad_norm_(list(self.model.parameters()), cfg.grad_clip)
        self.engine.step()
        self.scheduler.step()
        self.storage.charge_compute(cfg.sim_step_seconds, "compute")
        if self.fault_plan is not None:
            # A synchronous step is paced by its slowest rank: charge the
            # straggler tax on top of the nominal step time.
            slowdown = self.fault_plan.compute_slowdown(step, cfg.world_size)
            if slowdown > 1.0:
                self.storage.charge_compute(
                    (slowdown - 1.0) * cfg.sim_step_seconds, "fault_straggler"
                )
        return total_loss / n_micro

    # -- checkpointing --------------------------------------------------------------------

    def write_checkpoint(self, step: int, *, slots: list[str] | None, strategy_name: str) -> CheckpointPaths:
        """Write a (possibly partial) checkpoint for ``step`` and record it."""
        self.state.learning_rate = self.scheduler.get_last_lr()[0]
        self.state.checkpoints_written.append(step)
        return save_checkpoint(
            self.storage,
            step=step,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            trainer_state=self.state.to_dict(),
            training_args=self.config.to_dict(),
            scheduler_state=self.scheduler.state_dict(),
            rng_state={"seed": self.config.seed, "sampling": "stateless-step-indexed"},
            slots=slots,
            strategy=strategy_name,
        )

    # -- the loop ----------------------------------------------------------------------------

    def train(self, until_step: int | None = None) -> TrainResult:
        """Run from the current state to ``until_step`` (default: config).

        Returns a :class:`TrainResult`; an injected failure is reported
        via ``interrupted_at`` rather than propagating.
        """
        target = min(until_step or self.config.total_steps, self.config.total_steps)
        for cb in self.callbacks:
            cb.on_train_start(self)
        interrupted: int | None = None
        failed_rank: int | None = None
        step = self.state.global_step
        try:
            while step < target:
                step = self.state.global_step + 1
                loss = self.train_step(step)
                self.state.global_step = step
                for cb in self.callbacks:
                    cb.on_step_end(self, step, loss)
        except SimulatedFailure as failure:
            interrupted = failure.step
            failed_rank = getattr(failure, "rank", None)
        for cb in self.callbacks:
            cb.on_train_end(self)

        final_train = self.state.recent_loss() or float("nan")
        final_eval = self.eval_loss()
        clock = self.storage.clock.snapshot()
        comm = self.engine.comm.stats
        return TrainResult(
            final_step=self.state.global_step,
            final_train_loss=final_train,
            final_eval_loss=final_eval,
            interrupted_at=interrupted,
            checkpoints=list(self.state.checkpoints_written),
            clock=clock,
            checkpoint_time_fraction=self.storage.clock.fraction("checkpoint_write"),
            total_checkpoint_bytes=self.storage.stats.category_bytes("checkpoint_write"),
            comm_traffic={
                "bytes_by_op": dict(comm.bytes_by_op),
                "calls_by_op": dict(comm.calls_by_op),
            },
            failed_rank=failed_rank,
            fault_timeline=self.fault_timeline,
        )

    # -- evaluation -------------------------------------------------------------------------------

    def eval_loss(self, max_batches: int = 6) -> float:
        """Mean cross entropy over deterministic evaluation batches."""
        from ..autograd.tensor import no_grad

        losses = []
        with no_grad():
            for batch in self.dataset.eval_batches(self.config.micro_batch_size, max_batches):
                loss = self.model.loss(batch.input_ids, batch.labels)
                losses.append(loss.item())
        return float(np.mean(losses)) if losses else float("nan")

    # -- resume / recovery -----------------------------------------------------------------------------

    def resume_from(self, checkpoint: str | Path | CheckpointPaths) -> int:
        """Load a complete checkpoint and position the trainer after it.

        The checkpoint's world size need not match this run's: a
        mismatch is resharded in memory during the load (elastic
        resume), so shrinking or growing the simulated fleet between
        runs needs no separate conversion step.
        """
        paths = checkpoint if isinstance(checkpoint, CheckpointPaths) else CheckpointPaths(checkpoint)
        loaded = load_checkpoint(
            paths,
            model=self.model,
            config=self.model_config,
            engine=self.engine,
            storage=self.storage,
        )
        self.state = TrainerState.from_dict(loaded.trainer_state)
        self.state.global_step = loaded.step
        if loaded.scheduler_state:
            self.scheduler.load_state_dict(loaded.scheduler_state)
        log.info("resumed from %s at step %d", paths.dir, loaded.step)
        return loaded.step

    def resume_latest(self) -> int:
        """Resume from the run's ``latest`` pointer; returns the step."""
        paths = read_latest(self.storage.root)
        if paths is None:
            raise TrainingError(f"no 'latest' checkpoint under {self.storage.root}")
        return self.resume_from(paths)

    def auto_recover(self, failure_step: int, *, workers: int = 1) -> CheckpointPaths:
        """Merge the partial-checkpoint trail and resume (paper T2+T3).

        Builds the recipe from the manifests on disk, merges into
        ``<output_dir>/merged-<step>``, loads it, and returns its paths.
        """
        tailor = LLMTailor.from_checkpoints(
            self.storage.root, failure_step=failure_step, workers=workers
        )
        base_step = CheckpointPaths(tailor.recipe.base_checkpoint).step
        output = Path(self.storage.root) / f"merged-{base_step}"
        result = tailor.merge(output=output)
        log.info("auto-recovery merge: %s", result.summary().replace("\n", " | "))
        self.resume_from(result.output)
        return result.output


# ---------------------------------------------------------------------------
# Chaos supervisor: multi-leg runs under a fault plan
# ---------------------------------------------------------------------------

class ChaosSupervisor:
    """Runs a training experiment to completion under a fault plan.

    Each *leg* is one :class:`Trainer` at a fixed world size.  When a
    scheduled rank failure interrupts a leg, the supervisor:

    1. shrinks the world to the N-1 survivors,
    2. resumes from the newest *complete* checkpoint at or before the
       failure — elastically: the checkpoint's world size need not
       match, the reader reshards the optimizer payloads in memory — or,
       when the trail is partial (parity/filtered/magnitude strategies),
       auto-merges it into a complete checkpoint first,
    3. on a per-group CRC failure during that load (bitrot), restores
       the corrupted shards from their ``.replica`` copies and retries
       the resume — detection is loud, recovery re-reads, and silent
       corruption is structurally impossible,
    4. replays the lost steps and continues.

    Because training math is world-size invariant and the data order is
    a pure function of ``(seed, step, rank)``, a chaos run that fails at
    step *k* and shrinks produces **bitwise-identical** final weights to
    an uninterrupted run at the surviving world size resumed from the
    same checkpoint — the invariant ``tests/test_faults.py`` pins.

    The aggregated :class:`TrainResult` sums simulated clock and
    collective traffic across legs and carries the
    :class:`~repro.dist.faults.FaultTimeline`.
    """

    def __init__(
        self, config: TrainConfig, plan: FaultPlan, *, merge_workers: int = 1
    ) -> None:
        plan.validate(config.world_size, config.total_steps)
        self.config = config
        self.plan = plan
        self.merge_workers = merge_workers
        self.timeline = FaultTimeline()
        self._pending_failures = list(plan.rank_failures)
        self._pending_bitrot = list(plan.bitrot_events)
        self.trainer: Trainer | None = None

    def _build(self, config: TrainConfig) -> Trainer:
        return Trainer(
            config,
            fault_plan=self.plan,
            fault_timeline=self.timeline,
            _chaos_pending=(self._pending_failures, self._pending_bitrot),
        )

    def run(self, until_step: int | None = None) -> TrainResult:
        """Execute every leg and return the aggregated result."""
        cfg = self.config
        trainer = self._build(cfg)
        results = [trainer.train(until_step)]
        while results[-1].failed_rank is not None:
            failed_step = results[-1].interrupted_at
            survivors = cfg.world_size - 1
            if survivors < 1:  # pragma: no cover - plan.validate() forbids it
                raise TrainingError(
                    f"rank failure at step {failed_step} left no survivors"
                )
            log.warning(
                "supervisor: rank %d died at step %d; shrinking world %d -> %d",
                results[-1].failed_rank, failed_step, cfg.world_size, survivors,
            )
            cfg = cfg.replace(world_size=survivors)
            trainer = self._build(cfg)
            resume_step, resume_source = self._resume(trainer, failed_step)
            lost = failed_step - resume_step
            self.timeline.recoveries += 1
            self.timeline.lost_steps += lost
            self.timeline.record(
                failed_step, "recovery", world_size=survivors,
                resumed_from=resume_step, lost_steps=lost, source=resume_source,
            )
            results.append(trainer.train(until_step))
        self.trainer = trainer
        return self._aggregate(results)

    def _resume(self, trainer: Trainer, failed_step: int) -> tuple[int, str | None]:
        """Position a fresh (shrunk) trainer after the last safe point.

        Returns ``(step, source_dir_name)``: the newest complete
        checkpoint at or before the failure, the auto-merged output of a
        partial trail, or ``(0, None)`` when nothing was saved yet
        (deterministic re-initialization *is* the resume point then).
        Bitrot surfaced by the per-group CRCs is repaired from replicas
        and the load retried once.
        """
        root = trainer.storage.root
        steps = [s for s in list_checkpoint_steps(root) if s <= failed_step]
        if not steps:
            return 0, None
        complete = [
            s for s in steps
            if checkpoint_dir(root, s).read_manifest().get("complete", False)
        ]
        # Pick the *freshest* recoverable point: a complete checkpoint
        # resumes without a merge, but an auto-merged partial trail may
        # anchor at a newer step (its base is the newest contributing
        # checkpoint) and replay fewer steps.  Ties go to the complete
        # checkpoint — it is the cheaper, merge-free path.
        merge_base: int | None = None
        try:
            from ..core.autorecipe import latest_slot_coverage

            coverage, _ = latest_slot_coverage(root, failure_step=failed_step)
            merge_base = max(coverage.values())
        except MergeError:
            pass  # incomplete coverage: the trail alone cannot recover
        use_complete = bool(complete) and (
            merge_base is None or max(complete) >= merge_base
        )
        for attempt in (0, 1):
            try:
                if use_complete:
                    source = checkpoint_dir(root, max(complete))
                    step = trainer.resume_from(source)
                elif merge_base is not None:
                    source = CheckpointPaths(
                        trainer.auto_recover(failed_step, workers=self.merge_workers)
                    )
                    step = trainer.state.global_step
                else:
                    return 0, None  # nothing recoverable: restart from init
                break
            except (CheckpointError, MergeError) as err:
                repaired = repair_from_replicas(root)
                if not repaired or attempt:
                    raise
                self.timeline.bitrot_detected += 1
                self.timeline.bitrot_repaired += len(repaired)
                self.timeline.record(
                    failed_step, "bitrot_recovery",
                    repaired=[p.name for p in repaired], error=str(err)[:160],
                )
                log.warning(
                    "supervisor: CRC failure during resume (%s); restored %d "
                    "replica(s), retrying", err, len(repaired),
                )
        source_world = int(source.read_manifest()["world_size"])
        if source_world != trainer.config.world_size:
            self.timeline.reshard_loads += source_world
            self.timeline.reshard_bytes += sum(
                source.shard(r).stat().st_size for r in range(source_world)
            )
        return step, source.dir.name

    def _aggregate(self, results: list[TrainResult]) -> TrainResult:
        """Fold per-leg results into one run record (clocks/traffic sum)."""
        final = results[-1]
        clock: dict[str, float] = {}
        bytes_by_op: dict[str, float] = {}
        calls_by_op: dict[str, int] = {}
        checkpoints: set[int] = set()
        total_ckpt_bytes = 0.0
        for r in results:
            for k, v in r.clock.items():
                clock[k] = clock.get(k, 0.0) + v
            for k, v in r.comm_traffic.get("bytes_by_op", {}).items():
                bytes_by_op[k] = bytes_by_op.get(k, 0.0) + v
            for k, v in r.comm_traffic.get("calls_by_op", {}).items():
                calls_by_op[k] = calls_by_op.get(k, 0) + v
            checkpoints.update(r.checkpoints)
            total_ckpt_bytes += r.total_checkpoint_bytes
        # Leg snapshots each carry their own "__total__"; the summed value
        # is the run's total simulated time — keep it out of the
        # per-category sum used for the checkpoint-time fraction.
        total_seconds = clock.pop("__total__", None)
        if total_seconds is None:
            total_seconds = sum(clock.values())
        clock["__total__"] = total_seconds
        ckpt_seconds = sum(
            v for k, v in clock.items() if k.startswith("checkpoint_write")
        )
        return TrainResult(
            final_step=final.final_step,
            final_train_loss=final.final_train_loss,
            final_eval_loss=final.final_eval_loss,
            interrupted_at=final.interrupted_at,
            checkpoints=sorted(checkpoints),
            clock=clock,
            checkpoint_time_fraction=(
                ckpt_seconds / total_seconds if total_seconds else 0.0
            ),
            total_checkpoint_bytes=total_ckpt_bytes,
            comm_traffic={"bytes_by_op": bytes_by_op, "calls_by_op": calls_by_op},
            failed_rank=final.failed_rank,
            fault_timeline=self.timeline,
        )


def train_with_faults(
    config: TrainConfig,
    plan: FaultPlan,
    *,
    until_step: int | None = None,
    merge_workers: int = 1,
) -> TrainResult:
    """One-call chaos run: build a :class:`ChaosSupervisor` and run it."""
    return ChaosSupervisor(config, plan, merge_workers=merge_workers).run(
        until_step=until_step
    )
