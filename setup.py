"""Setup shim: enables editable installs on environments without `wheel`.

`pip install -e .` (PEP 660) requires the `wheel` package to build an
editable wheel; this offline environment lacks it, so `python setup.py
develop` (classic egg-link editable install) is the supported path and is
what `pip install -e .` falls back to in CI scripts.
"""
from setuptools import setup

setup()
