#!/usr/bin/env python3
"""Quickstart: train → crash → LLMTailor merge → resume, in ~30 seconds.

Walks the full LLMTailor loop on a tiny model:

1. train with the *parity* strategy (each checkpoint holds half the
   layers), with a simulated failure injected at step 45;
2. auto-generate a merge recipe from the partial-checkpoint trail and
   assemble a complete "Frankenstein" checkpoint;
3. resume training from it and finish the run.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import TrainConfig, Trainer
from repro.io import describe_checkpoint, list_checkpoint_steps
from repro.util.humanize import format_bytes


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-quickstart-"))
    print(f"working directory: {workdir}\n")

    config = TrainConfig(
        model="tiny-untied",          # 4 decoder layers, untied lm_head
        task="cpt",                   # continual pre-training on the toy corpus
        total_steps=60,
        checkpoint_strategy="parity",  # paper use case 1
        checkpoint_interval=10,
        failure_step=45,              # simulated crash after step 45
        output_dir=str(workdir / "run"),
        world_size=2,                 # two simulated ZeRO-3 ranks
        micro_batch_size=2,
        grad_accum_steps=1,
        seq_len=32,
        log_every=10,
    )

    print("=== phase 1: training with parity checkpointing (crash at 45) ===")
    trainer = Trainer(config)
    result = trainer.train()
    print(result.summary())

    print("\npartial checkpoints on disk:")
    for step in list_checkpoint_steps(trainer.storage.root):
        info = describe_checkpoint(trainer.storage.root / f"checkpoint-{step}")
        print(
            f"  checkpoint-{step}: slots={len(info['slots'])}/"
            f"{trainer.model_config.num_model_slots}, "
            f"size={format_bytes(info['total_nbytes'])}, complete={info['complete']}"
        )

    print("\n=== phase 2: LLMTailor auto-merge (recipe from manifests) ===")
    merged = trainer.auto_recover(failure_step=45, workers=2)
    info = describe_checkpoint(merged)
    print(f"merged checkpoint: {merged.dir}")
    print(f"  complete={info['complete']}, size={format_bytes(info['total_nbytes'])}")

    print("\n=== phase 3: resume to completion ===")
    final = trainer.train()
    print(final.summary())
    assert final.interrupted_at is None
    print("\nrecovered and finished — the Frankenstein checkpoint worked.")


if __name__ == "__main__":
    main()
