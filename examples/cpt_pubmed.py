#!/usr/bin/env python3
"""Use case 2 at small scale: CPT with the *filtered* strategy.

Mirrors the paper's §5.3 Llama CPT experiment: continual pre-training
on the PubMed-like corpus with only the first/last two layers saved
every interval and half the middle layers (plus the large auxiliary
layers) every 5x interval.  Reports the measured checkpoint-size
reduction against full checkpointing and the loss after recovery.

Run:  python examples/cpt_pubmed.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import TrainConfig, Trainer
from repro.io import checkpoint_dir, list_checkpoint_steps
from repro.util.humanize import format_bytes, format_ratio


def run(strategy: str, out: Path, failure_step: int | None):
    config = TrainConfig(
        model="llama3.2-1b-sim",      # real 16-layer topology, small width
        task="cpt",
        total_steps=80,
        checkpoint_strategy=strategy,
        checkpoint_interval=10,
        strategy_kwargs={"slow_factor": 3} if strategy == "filtered" else {},
        failure_step=failure_step,
        output_dir=str(out),
        world_size=2,
        micro_batch_size=2,
        grad_accum_steps=1,
        seq_len=48,
        log_every=20,
    )
    trainer = Trainer(config)
    result = trainer.train()
    return trainer, result


def run_bytes(root: Path) -> int:
    return sum(checkpoint_dir(root, s).nbytes() for s in list_checkpoint_steps(root))


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-cpt-"))

    print("=== baseline: full checkpointing, uninterrupted ===")
    _, baseline = run("full", workdir / "full", failure_step=None)
    print(baseline.summary())
    full_bytes = run_bytes(workdir / "full")

    print("\n=== filtered checkpointing with a crash at step 70 ===")
    trainer, interrupted = run("filtered", workdir / "filtered", failure_step=70)
    print(interrupted.summary())
    trainer.auto_recover(70, workers=2)
    resumed = trainer.train()
    print(resumed.summary())
    filtered_bytes = run_bytes(workdir / "filtered")

    print("\n=== checkpoint volume (measured on disk) ===")
    print(f"  full     : {format_bytes(full_bytes)}")
    print(f"  filtered : {format_bytes(filtered_bytes)}")
    print(f"  reduction: {format_ratio(full_bytes, filtered_bytes)}")
    print("\nfinal losses (baseline vs filtered-recovered):")
    print(f"  train: {baseline.final_train_loss:.4f} vs {resumed.final_train_loss:.4f}")
    print(f"  eval : {baseline.final_eval_loss:.4f} vs {resumed.final_eval_loss:.4f}")
    print("(paper §5.3: filtered recovery may drift slightly — that is the trade-off)")


if __name__ == "__main__":
    main()
