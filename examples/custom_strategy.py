#!/usr/bin/env python3
"""Writing a custom selective-checkpoint strategy.

The paper closes by arguing that *dynamic* strategies should outperform
rule-based ones (§5.3).  This example shows the extension surface:
subclass :class:`CheckpointStrategy`, register it, and the trainer,
decision log, auto-recipe and merge tooling all work unchanged.

The demo strategy checkpoints the K slots whose weights drifted most
since their last save — a simple "save what trained fastest" policy —
plus a staleness bound so recovery stays possible.

Run:  python examples/custom_strategy.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import TrainConfig, Trainer
from repro.nn import model_slots, slot_of_param
from repro.strategies import CheckpointStrategy, register_strategy
from repro.util.humanize import format_bytes


@register_strategy
class TopKDriftStrategy(CheckpointStrategy):
    """Save the K most-drifted slots per event (plus never-saved ones)."""

    name = "topk_drift"

    def __init__(self, config, interval, *, k: int = 3) -> None:
        super().__init__(config, interval)
        self.k = k
        self._last_saved: dict[str, np.ndarray] = {}

    def _slot_vectors(self, model):
        vectors: dict[str, list[np.ndarray]] = {}
        for name, p in model.named_parameters():
            vectors.setdefault(slot_of_param(name), []).append(p.data.ravel())
        return {s: np.concatenate(v) for s, v in vectors.items()}

    def slots_for_event(self, event_index, step, *, model=None):
        all_slots = model_slots(self.config)
        if model is None or event_index == 0:
            return all_slots  # first event: full snapshot
        current = self._slot_vectors(model)
        drift = {}
        for slot in all_slots:
            ref = self._last_saved.get(slot)
            if ref is None:
                drift[slot] = float("inf")
            else:
                drift[slot] = float(np.linalg.norm(current[slot] - ref))
        ranked = sorted(all_slots, key=lambda s: drift[s], reverse=True)
        chosen = set(ranked[: self.k]) | {s for s in all_slots if drift[s] == float("inf")}
        for slot in chosen:
            self._last_saved[slot] = current[slot].copy()
        return [s for s in all_slots if s in chosen]  # canonical order


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-custom-"))
    trainer = Trainer(
        TrainConfig(
            model="tiny-untied", task="cpt", total_steps=50,
            checkpoint_strategy="topk_drift", checkpoint_interval=5,
            strategy_kwargs={"k": 2},
            failure_step=42,
            output_dir=str(workdir / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
    )
    result = trainer.train()
    print(result.summary())

    print("\ncheckpoint decisions (step -> slots saved):")
    for record in trainer.strategy.log.records:
        print(f"  step {record['step']:>3}: {record['slots']}")

    total = trainer.storage.tree_nbytes()
    print(f"\ntotal checkpoint bytes on disk: {format_bytes(total)}")

    print("\nrecovering from step 42 with the generic machinery...")
    trainer.auto_recover(42, workers=2)
    final = trainer.train()
    print(final.summary())
    print("\ncustom strategy + unchanged merge tooling: recovery works.")


if __name__ == "__main__":
    main()
