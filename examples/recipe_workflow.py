#!/usr/bin/env python3
"""The explicit YAML recipe workflow (MergeKit-style, paper §3-4).

Instead of auto-recovery, this example writes the merge recipe by hand —
the way a user drives LLMTailor directly — and contrasts it with the
weights-only mini-MergeKit baseline that cannot restore training.

Run:  python examples/recipe_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import LLMTailor, TrainConfig, Trainer, verify_checkpoint
from repro.core import load_recipe, mergekit_merge
from repro.io import CheckpointPaths


RECIPE_TEMPLATE = """\
# LLMTailor merge recipe: odd layers + embedding from checkpoint-20,
# everything else from checkpoint-30 (the base).
base_checkpoint: {run}/checkpoint-30
slices:
  - slot: layers.1
    source: {run}/checkpoint-20
  - slot: layers.3
    source: {run}/checkpoint-20
aux:
  embed_tokens: {run}/checkpoint-20
options:
  workers: 2
  cache_mode: per-checkpoint
  verify: true
"""


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-recipe-"))
    run_dir = workdir / "run"

    # Build a parity trail: full @10, odd @20, even @30.
    trainer = Trainer(
        TrainConfig(
            model="tiny-untied", task="cpt", total_steps=30,
            checkpoint_strategy="parity", checkpoint_interval=10,
            output_dir=str(run_dir), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
    )
    trainer.train()

    # 1. Write the recipe YAML by hand.
    recipe_path = workdir / "recipe.yaml"
    recipe_path.write_text(RECIPE_TEMPLATE.format(run=run_dir), encoding="utf-8")
    print(f"recipe written to {recipe_path}:\n")
    print(recipe_path.read_text())

    # 2. Parse, inspect, and execute it.
    recipe = load_recipe(recipe_path)
    print(f"parsed: base={recipe.base_checkpoint.name}, "
          f"{len(recipe.assignments)} explicit slot assignments")
    result = LLMTailor(recipe).merge(output=workdir / "merged")
    print()
    print(result.summary())

    # 3. Verify against the sources (bitwise provenance check).
    report = verify_checkpoint(
        workdir / "merged",
        sources={"layers.1": CheckpointPaths(run_dir / "checkpoint-20")},
    )
    print(f"\nprovenance verification: {report}")

    # 4. Contrast: mini-MergeKit merges weights only (not resumable).
    mk_out = mergekit_merge(
        base=run_dir / "checkpoint-10",  # the full snapshot has all weights
        output=workdir / "mergekit-out",
        method="passthrough",
    )
    print(f"\nmini-MergeKit output at {mk_out}:")
    print(f"  has weights          : {(mk_out / 'model.tsr').exists()}")
    print(f"  has optimizer shards : {any(mk_out.rglob('*optim_states*'))}")
    print(f"  has trainer state    : {(mk_out / 'trainer_state.json').exists()}")
    print("  -> weights-only merging cannot resume training (paper §3);")
    print("     LLMTailor's output above can.")


if __name__ == "__main__":
    main()
