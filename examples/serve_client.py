#!/usr/bin/env python3
"""Merge service: two tenants share one daemon's cache, bitwise-safe.

Walks the serve subsystem end to end:

1. train a tiny run and hand identical copies to two "tenants";
2. start the merge service in-process (`serve_in_thread`) with a
   content-addressed blob store;
3. each tenant submits the same merge recipe over the socket — the
   second tenant's job hits the cross-request group cache, and the
   blob store keeps exactly one copy of every shared shard group;
4. verify the served outputs are BITWISE IDENTICAL to a one-shot
   `LLMTailor.merge()` of the same recipe (modulo the manifest's
   self-referential output path).

Run:  python examples/serve_client.py
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from pathlib import Path

from repro import TrainConfig, Trainer
from repro.core.tailor import LLMTailor
from repro.serve import JobSpec, ServeClient, ServeConfig, serve_in_thread
from repro.util.humanize import format_bytes

TENANTS = ("alpha", "beta")


def digest(root: Path) -> str:
    """Checkpoint content hash with the output path self-reference masked."""
    h = hashlib.sha256()
    for p in sorted(root.rglob("*")):
        if not p.is_file():
            continue
        h.update(p.relative_to(root).as_posix().encode())
        data = p.read_bytes()
        if p.name.endswith(".json"):
            data = data.replace(str(root).encode(), b"<OUT>")
        h.update(data)
    return h.hexdigest()


def recipe_doc(run: Path) -> dict:
    return {
        "base_checkpoint": str(run / "checkpoint-24"),
        "slices": [{"slot": "layers.0-1", "source": str(run / "checkpoint-16")}],
        "options": {"stream": True},
    }


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-serve-", dir="/tmp"))
    print(f"working directory: {workdir}\n")

    print("=== phase 1: train a tiny run, copy it to two tenants ===")
    run = workdir / "run"
    Trainer(TrainConfig(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="full", checkpoint_interval=8,
        output_dir=str(run), world_size=2, micro_batch_size=2,
        grad_accum_steps=1, seq_len=32, log_every=100,
    )).train()
    runs = {}
    for tenant in TENANTS:
        runs[tenant] = workdir / f"tenant-{tenant}"
        shutil.copytree(run, runs[tenant])
    print(f"tenants: {', '.join(TENANTS)} (byte-identical checkpoint trails)")

    print("\n=== phase 2: one-shot reference merges (no daemon) ===")
    refs = {}
    for tenant in TENANTS:
        out = workdir / f"ref-{tenant}"
        LLMTailor.from_dict(recipe_doc(runs[tenant])).merge(out)
        refs[tenant] = digest(out)
    print("reference digests computed")

    print("\n=== phase 3: the same merges, served over the socket ===")
    sock = str(workdir / "s.sock")
    config = ServeConfig(socket_path=sock, workers=2,
                         blob_root=str(workdir / "blobs"))
    with serve_in_thread(config) as handle:
        with ServeClient(sock) as client:
            for tenant in TENANTS:
                out = workdir / f"served-{tenant}"
                job = client.submit_and_wait(JobSpec(
                    tenant=tenant, kind="merge",
                    params={"recipe_doc": recipe_doc(runs[tenant]),
                            "output": str(out)}), timeout=300)
                assert job["status"] == "done", job.get("error")
                timeline = job["timeline"]
                print(f"  {tenant}: {job['id']} done, "
                      f"cache hits={timeline['cache_hits']}, "
                      f"misses={timeline['cache_misses']}")
                assert digest(out) == refs[tenant], (
                    f"served merge for {tenant} diverged from one-shot output")
        stats = handle.service.stats()

    cache = stats["cache"]
    blobs = stats["blob_store"]
    print(f"\nserved output is BITWISE IDENTICAL to the one-shot merge "
          f"for all {len(TENANTS)} tenants")
    print(f"cache hit rate : {cache['hit_rate']:.1%}")
    print(f"blob store     : {blobs['objects']} objects for "
          f"{blobs['total_refs']} refs "
          f"({format_bytes(blobs['object_bytes'])} stored, "
          f"dedup {blobs['dedup_factor']:.1f}x)")
    assert cache["hits"] > 0, "second tenant should hit the shared cache"
    assert blobs["dedup_factor"] >= 2.0, "identical tenants should dedup"
    print("\ntwo tenants, one decode — the shared cache and blob store paid off.")


if __name__ == "__main__":
    main()
