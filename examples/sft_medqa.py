#!/usr/bin/env python3
"""Use case 1 at small scale: SFT with parity checkpointing + evaluation.

Mirrors the paper's §5.2 Qwen SFT experiment: supervised fine-tuning on
MedQA-like question-answer pairs with parity checkpoints, recovery from
a crash, and a zero-shot benchmark comparison between the uninterrupted
model and the Frankenstein-recovered one (paper Table 2).

Run:  python examples/sft_medqa.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import TrainConfig, Trainer
from repro.evalbench import evaluate_suite, suite_table


def make_trainer(out: Path, failure_step: int | None, strategy: str) -> Trainer:
    return Trainer(
        TrainConfig(
            model="tiny-qwen",        # attention biases, like Qwen2.5
            task="sft",
            total_steps=80,
            checkpoint_strategy=strategy,
            checkpoint_interval=10,
            failure_step=failure_step,
            output_dir=str(out),
            world_size=2,
            micro_batch_size=2,
            grad_accum_steps=1,
            seq_len=40,
            log_every=20,
        )
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-sft-"))

    print("=== baseline SFT run (no failures) ===")
    baseline = make_trainer(workdir / "baseline", None, "full")
    print(baseline.train().summary())

    print("\n=== parity SFT run, crash at 70, recover, finish ===")
    parity = make_trainer(workdir / "parity", 70, "parity")
    print(parity.train().summary())
    parity.auto_recover(70, workers=2)
    print(parity.train().summary())

    print("\n=== zero-shot evaluation (paper Table 2 analogue) ===")
    rows = {
        "tiny-qwen (SFT)": evaluate_suite(
            baseline.model, baseline.tokenizer, baseline.kb, items_per_benchmark=25
        ),
        "parity-70": evaluate_suite(
            parity.model, parity.tokenizer, parity.kb, items_per_benchmark=25
        ),
    }
    print(suite_table(rows, "Zero-shot accuracy (higher is better; chance = 25 / 33%)").render())
    print("\nparity recovery should track the baseline row closely.")


if __name__ == "__main__":
    main()
