#!/usr/bin/env python3
"""Chaos engineering demo: rank death → elastic shrink → bitwise resume.

Runs a 3-rank training job under a fault plan that makes rank 0 lag
3x for a few steps and then kills rank 2 mid-run.  The chaos
supervisor shrinks the world to the 2 survivors, resumes elastically
from the last checkpoint (the reader reshards the optimizer payloads
3→2 in memory), replays the lost steps, and finishes — then the script
proves the headline invariant by training a clean 2-rank reference
from the same checkpoint and comparing final states bit for bit.

Run:  python examples/chaos_resume.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import ChaosSupervisor, TrainConfig, Trainer
from repro.dist.faults import FaultPlan, rank_failure, straggler
from repro.io import CheckpointPaths


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="llmtailor-chaos-"))
    print(f"working directory: {workdir}\n")

    base = dict(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="full", checkpoint_interval=8,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32, log_every=8,
    )
    plan = FaultPlan(events=(
        straggler(5, 0, 3.0, duration=4),   # rank 0 lags 3x for steps 5-8
        rank_failure(14, 2),                # rank 2 dies after step 14
    ))

    print("=== phase 1: 3-rank training under the fault plan ===")
    config = TrainConfig(output_dir=str(workdir / "chaos"), world_size=3, **base)
    supervisor = ChaosSupervisor(config, plan)
    result = supervisor.run()
    print(result.summary())
    print(result.fault_timeline.summary())
    assert result.interrupted_at is None
    assert supervisor.trainer.config.world_size == 2  # shrank 3 -> 2

    recovery = [e for e in result.fault_timeline.events if e["kind"] == "recovery"][0]
    print(f"\nsimulated straggler tax : {result.clock['fault_straggler']:.1f}s")
    print(f"steps replayed          : {result.fault_timeline.lost_steps}")
    print(f"resumed from            : {recovery['source']} "
          f"(step {recovery['resumed_from']}, elastic 3 -> 2)")

    print("\n=== phase 2: clean 2-rank reference from the same checkpoint ===")
    reference = Trainer(
        TrainConfig(output_dir=str(workdir / "ref"), world_size=2, **base)
    )
    reference.resume_from(
        CheckpointPaths(supervisor.trainer.storage.root / recovery["source"])
    )
    reference.train()

    chaos_state = supervisor.trainer.engine.master_state_dict()
    ref_state = reference.engine.master_state_dict()
    for key in chaos_state:
        np.testing.assert_array_equal(chaos_state[key], ref_state[key], err_msg=key)
    print("final fp32 masters are BITWISE IDENTICAL to the clean reference —")
    print("the failure, the shrink, and the elastic resume cost zero fidelity.")


if __name__ == "__main__":
    main()
