#!/usr/bin/env python3
"""Long-horizon elasticity soak: thousands of steps of seeded preemption
churn, cross-checked against the analytic planner.

Runs ``llmtailor``'s chaos supervisor over a
:meth:`FaultPlan.sample_preemption_trace` schedule (exponential
interarrival + restore) for ``--steps`` steps, then asserts that the
live goodput report agrees with the config-only
:func:`repro.strategies.plan_fault_cost` prediction:

* lost (replayed) steps — exact;
* reshard loads — exact;
* grow count — exact;
* goodput (useful steps / busy sim-second) — to 1e-6 relative.

Any disagreement means the live supervisor and the planner have drifted
apart — the repo's goodput SLO numbers can no longer be trusted — so
the script exits 1 and prints both sides.  Deterministic end to end:
one seed pins the trace, the data order, and every recovery decision.

Nightly CI runs ``--steps 2000`` on a tiny model (bounded minutes);
locally the default 400-step soak finishes in seconds.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

REL_TOL = 1e-6


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=400)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--world-size", type=int, default=3)
    parser.add_argument("--interval", type=int, default=50)
    parser.add_argument("--mean-interarrival", type=float, default=None,
                        help="mean steps between preemptions "
                        "(default: steps/20)")
    parser.add_argument("--mean-restore", type=float, default=None,
                        help="mean steps until capacity returns "
                        "(default: interarrival/2)")
    parser.add_argument("--topology", default=None, metavar="NxR",
                        help="cluster shape, e.g. 2x2: soak under the "
                        "hierarchical communicator and hold the planner to "
                        "the same parity bar per link class")
    parser.add_argument("-o", "--output", default=None,
                        help="run directory (default: a temp dir)")
    args = parser.parse_args(argv)

    from repro.dist.faults import FaultPlan
    from repro.strategies import plan_fault_cost
    from repro.train import ChaosSupervisor, TrainConfig

    topology = None
    if args.topology is not None:
        from repro.dist.topology import Topology

        topology = Topology.from_shape(args.topology)
        if args.world_size > topology.world_size:
            parser.error(
                f"--world-size {args.world_size} exceeds topology "
                f"{topology.shape} capacity {topology.world_size}"
            )

    interarrival = args.mean_interarrival or max(1.0, args.steps / 20.0)
    plan = FaultPlan.sample_preemption_trace(
        seed=args.seed, world_size=args.world_size, total_steps=args.steps,
        mean_interarrival=interarrival,
        mean_restore=args.mean_restore or max(1.0, interarrival / 2.0),
        min_world_size=max(1, args.world_size - 2),
    )
    print(f"trace: {len(plan.preemptions)} preemption(s) over {args.steps} "
          f"steps at world size {args.world_size} (seed {args.seed})")

    output = args.output or tempfile.mkdtemp(prefix="soak-faults-")
    config = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=args.steps,
        checkpoint_strategy="full", checkpoint_interval=args.interval,
        output_dir=output, world_size=args.world_size,
        micro_batch_size=1, grad_accum_steps=1, seq_len=16,
        log_every=max(1, args.steps // 10),
        topology=None if topology is None else topology.to_dict(),
    )
    supervisor = ChaosSupervisor(config, plan)
    result = supervisor.run()
    if result.interrupted_at is not None:
        print(f"FAIL: soak interrupted at step {result.interrupted_at}")
        return 1
    timeline = result.fault_timeline
    live = result.goodput
    print(timeline.summary().splitlines()[0])
    print("live     :", live.summary())

    cost = plan_fault_cost(
        supervisor.trainer.model_config, plan, world_size=args.world_size,
        total_steps=args.steps, checkpoint_interval=args.interval,
        topology=topology,
    )
    print("predicted:", cost.goodput_report().summary())

    failures = []
    if cost.lost_steps != timeline.lost_steps:
        failures.append(
            f"lost steps: planned {cost.lost_steps}, live {timeline.lost_steps}"
        )
    if cost.reshard_loads != timeline.reshard_loads:
        failures.append(
            f"reshard loads: planned {cost.reshard_loads}, "
            f"live {timeline.reshard_loads}"
        )
    if cost.num_joins != timeline.grows:
        failures.append(
            f"grows: planned {cost.num_joins}, live {timeline.grows}"
        )
    if abs(cost.goodput - live.goodput) > REL_TOL * max(live.goodput, 1e-12):
        failures.append(
            f"goodput: planned {cost.goodput!r}, live {live.goodput!r} "
            f"(rel tol {REL_TOL})"
        )
    if failures:
        print("FAIL: live run and planner disagree:")
        for line in failures:
            print("  -", line)
        return 1
    print(f"OK: planner matches live goodput {live.goodput:.6f} "
          f"({timeline.recoveries} recoveries, {timeline.grows} grows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
