#!/usr/bin/env python3
"""Generate (and check) the committed API reference under ``docs/api/``.

Stdlib only (``inspect`` + ``importlib``): walks every module under
``src/repro/``, renders one deterministic Markdown page per module —
module docstring, public classes with their public methods and
properties, public functions, public constants — plus an index page.

Two modes:

* default — (re)write ``docs/api/``; exits non-zero if any public
  module, class, function, method, or property lacks a docstring, so
  an undocumented API surface cannot be rendered into the reference;
* ``--check`` — render in memory and diff against the committed pages;
  exits non-zero on stale/missing/extra files *or* undocumented
  symbols.  This is the CI ``docs`` job.

Public means: listed in the module's ``__all__`` (or, without
``__all__``, top-level names not starting with ``_``) and *defined* in
that module — re-exports are documented where they are defined and
rendered as links.  Inherited method docstrings count (``inspect.getdoc``
resolves the MRO), so overriding without re-documenting is fine.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"
DEFAULT_OUT = REPO_ROOT / "docs" / "api"
PACKAGE = "repro"

sys.path.insert(0, str(SRC_ROOT))


# ---------------------------------------------------------------------------
# Discovery
# ---------------------------------------------------------------------------

def discover_modules() -> list[str]:
    """Dotted names of every module under ``src/repro/``, sorted."""
    names = []
    for path in sorted((SRC_ROOT / PACKAGE).rglob("*.py")):
        rel = path.relative_to(SRC_ROOT)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        names.append(".".join(parts))
    return sorted(set(names))


def public_names(module) -> list[str]:
    """The module's public surface, in stable (alphabetical) order."""
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return sorted(declared)
    return sorted(
        name for name in vars(module)
        if not name.startswith("_") and not inspect.ismodule(getattr(module, name))
    )


def _defined_here(obj, module_name: str) -> bool:
    return getattr(obj, "__module__", None) == module_name


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _signature(obj) -> str:
    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    return sig


def _first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0]


def _indent_doc(doc: str) -> str:
    return "\n".join(doc.rstrip().splitlines())


class Collector:
    """Walks modules, renders pages, and records undocumented symbols."""

    def __init__(self) -> None:
        self.undocumented: list[str] = []  # "module: symbol" entries
        self.pages: dict[str, str] = {}  # filename -> content
        self.summaries: dict[str, str] = {}  # module -> first doc line

    # -- recording ----------------------------------------------------------

    def _require_doc(self, doc: str | None, where: str) -> str:
        if not doc or not doc.strip():
            self.undocumented.append(where)
            return "*(undocumented)*"
        return _indent_doc(doc)

    # -- per-kind rendering -------------------------------------------------

    def _render_function(self, name: str, obj, module_name: str, out: list[str],
                         *, heading: str = "###") -> None:
        out.append(f"{heading} `{name}{_signature(obj)}`")
        out.append("")
        out.append(self._require_doc(inspect.getdoc(obj), f"{module_name}: {name}"))
        out.append("")

    def _render_class(self, name: str, cls, module_name: str, out: list[str]) -> None:
        bases = [
            b.__name__ for b in cls.__bases__
            if b is not object and b.__module__.startswith(PACKAGE)
        ]
        suffix = f"({', '.join(bases)})" if bases else ""
        out.append(f"### class `{name}{suffix}`")
        out.append("")
        out.append(self._require_doc(inspect.getdoc(cls), f"{module_name}: {name}"))
        out.append("")
        try:
            out.append(f"Constructor: `{name}{_signature(cls)}`")
            out.append("")
        except (TypeError, ValueError):  # pragma: no cover - exotic metaclass
            pass
        if dataclasses.is_dataclass(cls):
            fields = [
                f"`{f.name}`" for f in dataclasses.fields(cls)
            ]
            if fields:
                out.append(f"Dataclass fields: {', '.join(fields)}")
                out.append("")
        members = []
        for attr_name in sorted(vars(cls)):
            if attr_name.startswith("_"):
                continue
            raw = vars(cls)[attr_name]
            if isinstance(raw, (staticmethod, classmethod)):
                members.append((attr_name, raw.__func__, "method"))
            elif inspect.isfunction(raw):
                members.append((attr_name, raw, "method"))
            elif isinstance(raw, property):
                members.append((attr_name, raw, "property"))
        for attr_name, member, kind in members:
            where = f"{module_name}: {name}.{attr_name}"
            if kind == "property":
                out.append(f"- **`.{attr_name}`** (property) — "
                           + self._summary_or_flag(inspect.getdoc(member), where))
            else:
                out.append(f"- **`.{attr_name}{_signature(member)}`** — "
                           + self._summary_or_flag(
                               inspect.getdoc(getattr(cls, attr_name)), where))
        if members:
            out.append("")

    def _summary_or_flag(self, doc: str | None, where: str) -> str:
        if not doc or not doc.strip():
            self.undocumented.append(where)
            return "*(undocumented)*"
        return _first_line(doc)

    # -- per-module rendering -----------------------------------------------

    def render_module(self, module_name: str) -> None:
        module = importlib.import_module(module_name)
        out: list[str] = []
        out.append(f"# `{module_name}`")
        out.append("")
        out.append(self._require_doc(module.__doc__, f"{module_name}: (module docstring)"))
        out.append("")
        self.summaries[module_name] = _first_line(module.__doc__)

        reexports: list[tuple[str, str]] = []
        constants: list[tuple[str, object]] = []
        classes: list[tuple[str, type]] = []
        functions: list[tuple[str, object]] = []
        for name in public_names(module):
            obj = getattr(module, name, None)
            if obj is None and name not in vars(module):
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if _defined_here(obj, module_name):
                    (classes if inspect.isclass(obj) else functions).append((name, obj))
                else:
                    reexports.append((name, obj.__module__))
            elif inspect.ismodule(obj):
                continue
            else:
                constants.append((name, obj))

        if reexports:
            out.append("## Re-exports")
            out.append("")
            for name, origin in reexports:
                if origin.split(".")[0] == PACKAGE:
                    out.append(f"- `{name}` — see [`{origin}`]({origin}.md)")
                else:  # stdlib/third-party origin: no page to link to
                    out.append(f"- `{name}` — see `{origin}`")
            out.append("")
        if constants:
            out.append("## Constants")
            out.append("")
            for name, value in constants:
                out.append(f"- `{name} = {value!r}`")
            out.append("")
        if classes:
            out.append("## Classes")
            out.append("")
            for name, cls in classes:
                self._render_class(name, cls, module_name, out)
        if functions:
            out.append("## Functions")
            out.append("")
            for name, fn in functions:
                self._render_function(name, fn, module_name, out)

        content = "\n".join(out).rstrip() + "\n"
        self.pages[f"{module_name}.md"] = content

    def render_index(self) -> None:
        out = [
            "# API reference",
            "",
            "One page per module under `src/repro/`, generated by",
            "`scripts/gen_api_docs.py` (run it after changing any public API;",
            "CI's `docs` job runs it with `--check`).",
            "",
            "| Module | Summary |",
            "| --- | --- |",
        ]
        for module_name in sorted(self.summaries):
            summary = self.summaries[module_name].replace("|", "\\|")
            out.append(f"| [`{module_name}`]({module_name}.md) | {summary} |")
        self.pages["README.md"] = "\n".join(out) + "\n"

    def run(self) -> None:
        for module_name in discover_modules():
            self.render_module(module_name)
        self.render_index()


# ---------------------------------------------------------------------------
# Modes
# ---------------------------------------------------------------------------

def _report_undocumented(undocumented: list[str]) -> None:
    print(f"ERROR: {len(undocumented)} undocumented public symbol(s):",
          file=sys.stderr)
    for entry in undocumented:
        print(f"  - {entry}", file=sys.stderr)


def _pages_on_disk(out_dir: Path) -> set[str]:
    """Every committed page, as a path relative to ``out_dir``.

    Recursive on purpose: generated pages are flat (dotted module names),
    so anything in a subdirectory is definitionally an orphan — e.g. a
    page tree left behind by a package rename — and must be reported
    (``--check``) or deleted (write mode), not silently ignored.
    """
    if not out_dir.is_dir():
        return set()
    return {p.relative_to(out_dir).as_posix() for p in out_dir.rglob("*.md")}


def write_mode(out_dir: Path, collector: Collector) -> int:
    out_dir.mkdir(parents=True, exist_ok=True)
    expected = set(collector.pages)
    for name, content in sorted(collector.pages.items()):
        (out_dir / name).write_text(content, encoding="utf-8")
    removed = 0
    for rel in sorted(_pages_on_disk(out_dir) - expected):
        stale = out_dir / rel
        stale.unlink()
        if stale.parent != out_dir and not any(stale.parent.iterdir()):
            stale.parent.rmdir()
        removed += 1
    print(f"wrote {len(collector.pages)} page(s) to {out_dir}"
          + (f", removed {removed} stale" if removed else ""))
    if collector.undocumented:
        _report_undocumented(collector.undocumented)
        return 1
    return 0


def check_mode(out_dir: Path, collector: Collector) -> int:
    problems = 0
    on_disk = _pages_on_disk(out_dir)
    for name, content in sorted(collector.pages.items()):
        path = out_dir / name
        if name not in on_disk:
            print(f"MISSING: {path} (run scripts/gen_api_docs.py)", file=sys.stderr)
            problems += 1
        elif path.read_text(encoding="utf-8") != content:
            print(f"STALE: {path} (run scripts/gen_api_docs.py)", file=sys.stderr)
            problems += 1
    for name in sorted(on_disk - set(collector.pages)):
        print(f"EXTRA: {out_dir / name} (module gone? run scripts/gen_api_docs.py)",
              file=sys.stderr)
        problems += 1
    if collector.undocumented:
        _report_undocumented(collector.undocumented)
        problems += len(collector.undocumented)
    if problems:
        print(f"docs check FAILED ({problems} problem(s))", file=sys.stderr)
        return 1
    print(f"docs check OK ({len(collector.pages)} page(s) up to date, "
          "0 undocumented public symbols)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output directory (default: docs/api)")
    parser.add_argument("--check", action="store_true",
                        help="verify committed pages are current instead of writing")
    args = parser.parse_args(argv)
    collector = Collector()
    collector.run()
    out_dir = Path(args.out)
    if args.check:
        return check_mode(out_dir, collector)
    return write_mode(out_dir, collector)


if __name__ == "__main__":
    sys.exit(main())
