#!/usr/bin/env python3
"""Validate relative links and anchors across README.md and docs/**/*.md.

Stdlib only.  For every Markdown file it collects inline links
(``[text](target)``), splits off any ``#fragment``, and checks:

* relative link targets exist on disk (relative to the linking file);
* fragments pointing into a Markdown file match a heading's GitHub-style
  anchor slug in that file (lowercase, spaces to dashes, punctuation
  dropped) — including self-links like ``[x](#section)``;
* absolute URLs (``http://``, ``https://``, ``mailto:``) are skipped —
  this checker gates repo-internal consistency, not the network.

Exit status is the number of broken links (0 = all good), and every
problem is printed as ``file:line: message`` so CI output is clickable.
Run directly or via CI's ``docs-links`` step.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

# Inline Markdown links; deliberately simple — no reference-style links
# in this repo, and code spans are stripped before matching.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for ASCII docs."""
    text = _CODE_SPAN.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[*_~]", "", text)  # emphasis markers don't slug
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """Every heading anchor in a Markdown file (with GitHub dedup suffixes)."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return [f for f in files if f.is_file()]


def check() -> int:
    anchor_cache: dict[Path, set[str]] = {}
    problems = 0
    for doc in _doc_files():
        rel_doc = doc.relative_to(REPO_ROOT)
        in_fence = False
        for lineno, line in enumerate(doc.read_text(encoding="utf-8").splitlines(), 1):
            if _CODE_FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK.findall(_CODE_SPAN.sub("", line)):
                if target.startswith(_EXTERNAL):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    resolved = (doc.parent / path_part).resolve()
                    if not resolved.exists():
                        print(f"{rel_doc}:{lineno}: broken link: {target}")
                        problems += 1
                        continue
                else:
                    resolved = doc
                if fragment and resolved.suffix == ".md":
                    if resolved not in anchor_cache:
                        anchor_cache[resolved] = _anchors(resolved)
                    if fragment not in anchor_cache[resolved]:
                        print(f"{rel_doc}:{lineno}: broken anchor: {target}")
                        problems += 1
    if problems:
        print(f"docs-links check FAILED ({problems} broken link(s))")
    else:
        print(f"docs-links check OK ({len(_doc_files())} file(s))")
    return problems


if __name__ == "__main__":
    sys.exit(check())
