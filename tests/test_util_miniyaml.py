"""Mini-YAML parser and dumper tests (the recipe front-end)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import miniyaml
from repro.util.errors import YamlError


class TestScalars:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("x: 5", 5),
            ("x: -3", -3),
            ("x: 0x10", 16),
            ("x: 2.5", 2.5),
            ("x: 1e-4", 1e-4),
            ("x: true", True),
            ("x: False", False),
            ("x: null", None),
            ("x: ~", None),
            ("x: hello", "hello"),
            ("x: 'quoted: string'", "quoted: string"),
            ('x: "with \\n escape"', "with \n escape"),
            ("x: [1, 2, 3]", [1, 2, 3]),
            ("x: {a: 1, b: two}", {"a": 1, "b": "two"}),
            ("x: []", []),
            ("x: {}", {}),
        ],
    )
    def test_scalar_parsing(self, text, expected):
        assert miniyaml.loads(text) == {"x": expected}

    def test_nested_flow(self):
        doc = miniyaml.loads("x: [1, [2, 3], {a: [4]}]")
        assert doc == {"x": [1, [2, 3], {"a": [4]}]}


class TestBlocks:
    def test_nested_mapping(self):
        doc = miniyaml.loads(
            """
base: ckpt-200
options:
  workers: 8
  cache_mode: none
"""
        )
        assert doc == {"base": "ckpt-200", "options": {"workers": 8, "cache_mode": "none"}}

    def test_sequence_of_scalars(self):
        assert miniyaml.loads("- a\n- b\n- 3") == ["a", "b", 3]

    def test_sequence_of_mappings_compact(self):
        doc = miniyaml.loads(
            """
slices:
  - slot: layers.0-7
    source: ckpt-100
  - slot: layers.8-15
    source: ckpt-200
"""
        )
        assert doc["slices"] == [
            {"slot": "layers.0-7", "source": "ckpt-100"},
            {"slot": "layers.8-15", "source": "ckpt-200"},
        ]

    def test_comments_and_blank_lines_ignored(self):
        doc = miniyaml.loads("# header\n\na: 1  # trailing\n# tail\n")
        assert doc == {"a": 1}

    def test_hash_inside_quotes_kept(self):
        assert miniyaml.loads("a: 'x # y'") == {"a": "x # y"}

    def test_document_marker_allowed_at_start(self):
        assert miniyaml.loads("---\na: 1") == {"a": 1}

    def test_empty_document_is_none(self):
        assert miniyaml.loads("") is None
        assert miniyaml.loads("# only a comment\n") is None

    def test_null_value_from_empty(self):
        assert miniyaml.loads("a:\nb: 2") == {"a": None, "b": 2}


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a: 1\na: 2",  # duplicate key
            "\ta: 1",  # tab indent
            "a: [1, 2",  # unbalanced flow
            "a: 'unterminated",  # bad quote
            "&anchor a: 1",  # anchors unsupported
            "a: 1\n---\nb: 2",  # multi-document
            "just a bare sentence with: no\nbad",  # trailing junk
        ],
    )
    def test_rejected_documents(self, text):
        with pytest.raises(YamlError):
            miniyaml.loads(text)

    def test_sequence_item_inside_mapping_rejected(self):
        with pytest.raises(YamlError):
            miniyaml.loads("a: 1\n- b")


class TestDumper:
    def test_roundtrip_recipe_like_doc(self):
        doc = {
            "base_checkpoint": "runs/x/checkpoint-200",
            "output": None,
            "slices": [
                {"slot": "layers.0-7", "source": "runs/x/checkpoint-100"},
                {"slot": "layers.8-15", "source": "runs/x/checkpoint-200"},
            ],
            "aux": {"embed_tokens": "runs/x/checkpoint-100"},
            "options": {"workers": 8, "cache_mode": "none", "verify": True},
        }
        assert miniyaml.loads(miniyaml.dumps(doc)) == doc

    def test_strings_that_look_like_numbers_quoted(self):
        doc = {"version": "1.0", "flag": "true", "nothing": "null"}
        assert miniyaml.loads(miniyaml.dumps(doc)) == doc

    def test_empty_containers(self):
        doc = {"a": [], "b": {}, "c": [[], {}]}
        assert miniyaml.loads(miniyaml.dumps(doc)) == doc

    def test_file_roundtrip(self, tmp_path):
        doc = {"a": [1, 2], "b": {"c": "d"}}
        path = tmp_path / "x.yaml"
        miniyaml.dump_file(path, doc)
        assert miniyaml.load_file(path) == doc

    def test_escaped_quote_before_colon_roundtrips(self):
        """Regression: ``\\"`` inside a double-quoted scalar is not a
        closing quote, so a following ``: `` must not split a mapping key
        (found by the dump/load property test)."""
        for value in ['": ', '"', 'a\\"b: c', "ends with backslash\\"]:
            doc = {"root": [value], "flow": {"k": value}}
            assert miniyaml.loads(miniyaml.dumps(doc)) == doc

    def test_escaped_quote_does_not_hide_comment_handling(self):
        assert miniyaml.loads('key: "a \\" # not a comment"') == {
            "key": 'a " # not a comment'
        }


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9),
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-./ :#'\"",
        max_size=20,
    ),
)


@settings(max_examples=120, deadline=None)
@given(
    st.recursive(
        _scalars,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(
                st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8),
                children,
                max_size=4,
            ),
        ),
        max_leaves=12,
    )
)
def test_property_dump_load_roundtrip(value):
    """Anything the dumper emits, the parser reads back identically."""
    document = miniyaml.dumps({"root": value})
    assert miniyaml.loads(document) == {"root": value}
