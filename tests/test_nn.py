"""Module system, layers, model structure, and slot arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients
from repro.nn import (
    Embedding,
    Linear,
    ModelConfig,
    Module,
    ModuleList,
    Parameter,
    RMSNorm,
    build_model,
    causal_mask,
    get_config,
    list_configs,
    model_nbytes,
    model_slots,
    parameter_shapes,
    slot_nbytes,
    slot_of_param,
    slot_param_counts,
)
from repro.numerics import DType
from repro.util.errors import ConfigError, ShapeError


class TestModuleSystem:
    def test_parameter_registration_and_names(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(3))
                self.sub = Linear(2, 2)

        net = Net()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["w", "sub.weight"]

    def test_reassigning_to_none_unregisters(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.head = Linear(2, 2)
                self.head = None

        assert list(Net().named_parameters()) == []

    def test_state_dict_roundtrip(self):
        net = Linear(3, 4, bias=True, rng=np.random.default_rng(0))
        sd = net.state_dict()
        net2 = Linear(3, 4, bias=True, rng=np.random.default_rng(9))
        net2.load_state_dict(sd)
        np.testing.assert_array_equal(net2.weight.data, sd["weight"])
        np.testing.assert_array_equal(net2.bias.data, sd["bias"])

    def test_load_strict_rejects_missing_and_unexpected(self):
        net = Linear(2, 2)
        with pytest.raises(ConfigError):
            net.load_state_dict({})
        with pytest.raises(ConfigError):
            net.load_state_dict({"weight": net.weight.data, "ghost": np.zeros(1)})

    def test_load_shape_mismatch_raises(self):
        net = Linear(2, 2)
        with pytest.raises(ShapeError):
            net.load_state_dict({"weight": np.zeros((3, 3))})

    def test_train_eval_propagates(self):
        net = ModuleList([Linear(2, 2), Linear(2, 2)])
        net.eval()
        assert all(not m.training for m in net)
        net.train()
        assert all(m.training for m in net)

    def test_modulelist_indexing(self):
        ml = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(ml) == 3
        names = [n for n, _ in ml.named_parameters()]
        assert names[0] == "0.weight" and names[-1] == "2.weight"

    def test_zero_grad_clears(self):
        net = Linear(2, 2)
        out = net(Tensor(np.ones((1, 2)), requires_grad=True))
        out.sum().backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None


class TestLayers:
    def test_linear_matches_manual(self, rng):
        lin = Linear(4, 3, bias=True, rng=rng)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        out = lin(Tensor(x)).data
        np.testing.assert_allclose(out, x @ lin.weight.data.T + lin.bias.data, rtol=1e-5)

    def test_linear_grad(self, rng):
        lin = Linear(3, 2, bias=True, rng=rng)
        lin.weight = Parameter(lin.weight.data.astype(np.float64))
        lin.bias = Parameter(lin.bias.data.astype(np.float64))
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True, dtype=np.float64)
        check_gradients(lambda ts: (lin(ts[0]) ** 2).sum(), [x, lin.weight, lin.bias])

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([[0, 9]])).data
        np.testing.assert_array_equal(out[0, 1], emb.weight.data[9])

    def test_rmsnorm_starts_identity_scale(self):
        norm = RMSNorm(8)
        np.testing.assert_array_equal(norm.weight.data, np.ones(8))

    def test_causal_mask_shape_and_triangle(self):
        mask = causal_mask(4)
        assert mask.shape == (1, 1, 4, 4)
        assert mask[0, 0, 0, 1] < -1e8 and mask[0, 0, 1, 0] == 0.0


class TestModelConfig:
    def test_registry_contains_paper_models(self):
        names = list_configs()
        for required in ["llama3.2-1b", "llama3.1-8b", "qwen2.5-7b",
                         "llama3.1-8b-sim", "tiny-untied", "tiny-tied"]:
            assert required in names

    def test_unknown_config_raises(self):
        with pytest.raises(ConfigError):
            get_config("gpt-17")

    def test_head_divisibility_validated(self):
        with pytest.raises(ConfigError):
            ModelConfig(
                name="bad", vocab_size=10, hidden_size=10, intermediate_size=20,
                num_hidden_layers=1, num_attention_heads=3, num_key_value_heads=1,
            )

    def test_paper_slot_counts(self):
        # Table 7: Llama3-1B has 18 "total layers", Llama3-8B has 35.
        assert get_config("llama3.2-1b").num_model_slots == 18
        assert get_config("llama3.1-8b").num_model_slots == 35

    def test_paper_group_counts(self):
        # Fig. 3: 16-layer untied model -> 35 groups (2L + 3).
        assert get_config("llama3.1-8b").num_param_groups_tailored == 2 * 32 + 3
        assert get_config("llama3.2-1b").num_param_groups_tailored == 2 * 16 + 2

    def test_dict_roundtrip(self):
        cfg = get_config("tiny-qwen")
        assert ModelConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        data = get_config("tiny-tied").to_dict()
        data["flux_capacitor"] = 1
        with pytest.raises(ConfigError):
            ModelConfig.from_dict(data)


class TestCausalLM:
    def test_forward_shape(self, tiny_config):
        model = build_model(tiny_config, seed=0)
        ids = np.zeros((2, 8), dtype=np.int64)
        assert model(ids).shape == (2, 8, tiny_config.vocab_size)

    def test_loss_near_log_vocab_at_init(self, tiny_config, rng):
        model = build_model(tiny_config, seed=0)
        ids = rng.integers(0, tiny_config.vocab_size, size=(2, 12))
        loss = model.loss(ids, np.roll(ids, -1, axis=1)).item()
        assert abs(loss - np.log(tiny_config.vocab_size)) < 0.5

    def test_causality(self, untied_config, rng):
        """Changing a future token must not affect earlier logits."""
        model = build_model(untied_config, seed=0)
        ids = rng.integers(0, untied_config.vocab_size, size=(1, 10))
        base = model(ids).data
        ids2 = ids.copy()
        ids2[0, -1] = (ids2[0, -1] + 1) % untied_config.vocab_size
        perturbed = model(ids2).data
        np.testing.assert_allclose(base[0, :-1], perturbed[0, :-1], atol=1e-5)
        assert not np.allclose(base[0, -1], perturbed[0, -1], atol=1e-5)

    def test_tied_model_has_no_lm_head_param(self, tied_config):
        model = build_model(tied_config, seed=0)
        names = [n for n, _ in model.named_parameters()]
        assert not any(n.startswith("lm_head") for n in names)

    def test_tied_logits_use_embedding(self, tied_config, rng):
        model = build_model(tied_config, seed=0)
        ids = rng.integers(0, tied_config.vocab_size, size=(1, 4))
        logits = model(ids).data
        # Manual check on the last position: hidden @ E^T.
        hidden = model.model(ids, model._rope_cos, model._rope_sin).data
        np.testing.assert_allclose(
            logits, hidden @ model.model.embed_tokens.weight.data.T, rtol=1e-4
        )

    def test_bad_input_shapes_rejected(self, untied_config):
        model = build_model(untied_config, seed=0)
        with pytest.raises(ShapeError):
            model(np.zeros(5, dtype=np.int64))
        with pytest.raises(ShapeError):
            model(np.zeros((1, untied_config.max_position_embeddings + 1), dtype=np.int64))

    def test_qwen_has_attention_biases(self):
        model = build_model("tiny-qwen", seed=0)
        names = [n for n, _ in model.named_parameters()]
        assert "model.layers.0.self_attn.q_proj.bias" in names
        assert "model.layers.0.self_attn.o_proj.weight" in names
        assert not any(n.endswith("o_proj.bias") for n in names)

    def test_seed_determines_weights(self, untied_config):
        a = build_model(untied_config, seed=3).state_dict()
        b = build_model(untied_config, seed=3).state_dict()
        c = build_model(untied_config, seed=4).state_dict()
        assert all(np.array_equal(a[k], b[k]) for k in a)
        assert any(not np.array_equal(a[k], c[k]) for k in a)

    def test_structure_tree_mentions_key_parts(self, tiny_config):
        tree = build_model(tiny_config, seed=0).structure_tree()
        assert "embed_tokens" in tree and "RMSNorm" in tree and "lm_head" in tree


class TestSlots:
    def test_parameter_shapes_match_instantiated(self, tiny_config):
        model = build_model(tiny_config, seed=0)
        analytic = parameter_shapes(tiny_config)
        actual = {k: v.shape for k, v in model.state_dict().items()}
        assert list(analytic.keys()) == list(actual.keys())
        assert all(tuple(analytic[k]) == actual[k] for k in analytic)

    def test_sim_configs_match_too(self):
        for name in ["llama3.1-8b-sim", "llama3.2-1b-sim", "qwen2.5-7b-sim"]:
            cfg = get_config(name)
            model = build_model(cfg, seed=0)
            assert set(parameter_shapes(cfg)) == set(model.state_dict())

    def test_slot_of_param_examples(self):
        assert slot_of_param("model.layers.13.mlp.up_proj.weight") == "layers.13"
        assert slot_of_param("model.embed_tokens.weight") == "embed_tokens"
        assert slot_of_param("model.norm.weight") == "norm"
        assert slot_of_param("lm_head.weight") == "lm_head"
        with pytest.raises(ConfigError):
            slot_of_param("optimizer.step")

    def test_model_slots_counts(self, tiny_config):
        slots = model_slots(tiny_config)
        assert len(slots) == tiny_config.num_model_slots
        assert slots[0] == "embed_tokens"
        assert ("lm_head" in slots) == (not tiny_config.tie_word_embeddings)

    def test_slot_param_counts_sum_to_model(self, tiny_config):
        model = build_model(tiny_config, seed=0)
        assert sum(slot_param_counts(tiny_config).values()) == model.num_parameters()

    def test_full_scale_checkpoint_size_matches_paper(self):
        """Table 7: Llama3-8B full checkpoint is ~112.47 GB (decimal)."""
        cfg = get_config("llama3.1-8b")
        params = sum(slot_param_counts(cfg).values())
        ckpt_gb = params * 14 / 1e9  # 2B weights + 12B optimizer state
        assert abs(ckpt_gb - 112.47) < 1.5
        cfg1b = get_config("llama3.2-1b")
        params1b = sum(slot_param_counts(cfg1b).values())
        assert abs(params1b * 14 / 1e9 - 17.29) < 0.5

    def test_slot_nbytes_respects_dtype(self, untied_config):
        bf16 = slot_nbytes(untied_config, DType.BF16)
        fp32 = slot_nbytes(untied_config, DType.FP32)
        assert all(fp32[s] == 2 * bf16[s] for s in bf16)
        assert model_nbytes(untied_config, DType.BF16) == sum(bf16.values())
