"""Invariance suite for the fused zero-allocation training hot path.

The fused pipeline (persistent master/grad buffers, view shards, in-place
AdamW, vectorized re-quantize) must be *bitwise* indistinguishable from
the reference allocate-per-step implementation it replaced — losses,
masters, and moments — across world sizes, with and without a scheduler,
and through steps that skip parameter groups.  A tracemalloc bound pins
the "zero-allocation" claim: per-step allocations must not scale with the
number of steps taken.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.groups import tailored_param_groups
from repro.dist import SimComm, ZeroStage3Engine
from repro.dist.partition import GroupPartition
from repro.nn import Parameter, build_model
from repro.numerics import DType, quantize
from repro.optim import AdamW
from repro.optim.lr_scheduler import WarmupCosine
from repro.util.errors import DistError

from conftest import make_engine, train_steps


def _engine_pair(config, world_size, *, lr=1e-3, seed=1):
    """Same-seed (model, engine) twins: one fused, one reference."""
    mf = build_model(config, seed=seed)
    ef = ZeroStage3Engine(
        mf, config, tailored_param_groups(mf, config, 0.01),
        world_size=world_size, lr=lr, fused=True,
    )
    mr = build_model(config, seed=seed)
    er = ZeroStage3Engine(
        mr, config, tailored_param_groups(mr, config, 0.01),
        world_size=world_size, lr=lr, fused=False,
    )
    return (mf, ef), (mr, er)


def _assert_engines_bitwise_equal(ef, er):
    a, b = ef.master_state_dict(), er.master_state_dict()
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)
    for rank in range(ef.world_size):
        sa, sb = ef.rank_state_dict(rank), er.rank_state_dict(rank)
        for g in sa["state"]:
            assert sa["state"][g]["step"] == sb["state"][g]["step"]
            for key in ("exp_avg", "exp_avg_sq"):
                np.testing.assert_array_equal(
                    sa["state"][g][key], sb["state"][g][key],
                    err_msg=f"rank {rank} group {g} {key}",
                )
        for g in sa["fp32_flat_groups"]:
            np.testing.assert_array_equal(
                sa["fp32_flat_groups"][g], sb["fp32_flat_groups"][g]
            )


class TestFusedMatchesReference:
    @pytest.mark.parametrize("world_size", [1, 2, 4])
    @pytest.mark.parametrize("with_scheduler", [False, True])
    def test_bitwise_identical_training(self, untied_config, world_size, with_scheduler):
        (mf, ef), (mr, er) = _engine_pair(untied_config, world_size)
        scheds = []
        if with_scheduler:
            scheds = [
                WarmupCosine(e.reference_optimizer, warmup_steps=2, total_steps=8)
                for e in (ef, er)
            ]
        data_rng = np.random.default_rng(7)
        ids = data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
        labels = np.roll(ids, -1, axis=1)
        for _ in range(6):
            losses = []
            for model, engine in ((mf, ef), (mr, er)):
                engine.zero_grad()
                loss = model.loss(ids, labels)
                loss.backward()
                engine.step()
                losses.append(loss.item())
            for sched in scheds:
                sched.step()
            assert losses[0] == losses[1]  # bitwise: float equality
        _assert_engines_bitwise_equal(ef, er)

    @pytest.mark.parametrize("world_size", [1, 2, 4])
    def test_skipped_group_steps(self, untied_config, world_size):
        """Steps that touch only some groups leave the rest untouched,
        identically in both modes — including the step *after* a skip
        (no stale gradient may survive)."""
        (mf, ef), (mr, er) = _engine_pair(untied_config, world_size)
        rng = np.random.default_rng(3)
        grads = {}  # deterministic fake grads shared by both engines

        def partial_step(engine, touched_groups):
            engine.zero_grad()
            for g in touched_groups:
                for i, p in enumerate(engine._params[g]):
                    key = (g, i)
                    if key not in grads:
                        grads[key] = rng.standard_normal(p.data.shape).astype(np.float32)
                    p.grad = grads[key].copy()
            engine.step()

        n_groups = len(ef.group_meta)
        patterns = [
            list(range(n_groups)),          # full step
            [0, 1],                          # only two groups
            [],                              # nothing (no-op step)
            [n_groups - 1],                  # just the tail group
            list(range(0, n_groups, 2)),     # every other group
            list(range(n_groups)),           # full again after skips
        ]
        for touched in patterns:
            partial_step(ef, touched)
            partial_step(er, touched)
        _assert_engines_bitwise_equal(ef, er)

    def test_mixed_none_grads_within_group(self, untied_config):
        """A group where only some parameters carry grads zero-fills the
        rest — fused (persistent buffer) and reference (fresh zeros) must
        agree even when the buffer held older values."""
        (mf, ef), (mr, er) = _engine_pair(untied_config, 2)
        rng = np.random.default_rng(11)
        # Step 1: every param of group 1 has a grad (dirties the buffer).
        for engine in (ef, er):
            engine.zero_grad()
        g1_shapes = [p.data.shape for p in ef._params[1]]
        step1 = [rng.standard_normal(s).astype(np.float32) for s in g1_shapes]
        step2_first = rng.standard_normal(g1_shapes[0]).astype(np.float32)
        for engine in (ef, er):
            for p, g in zip(engine._params[1], step1):
                p.grad = g.copy()
            engine.step()
            engine.zero_grad()
            # Step 2: only the first param has a grad.
            engine._params[1][0].grad = step2_first.copy()
            engine.step()
        _assert_engines_bitwise_equal(ef, er)


class TestFusedInternals:
    def test_shards_are_views_into_master_buffer(self, untied_config):
        _, engine = make_engine(untied_config, world_size=2)
        assert engine.fused
        for g, meta in enumerate(engine.group_meta):
            buf = engine._master_bufs[g]
            for rank, tensor in enumerate(engine._shard_params[g]):
                start, stop = meta.partition.bounds(rank)
                assert np.shares_memory(tensor.data, buf[start:stop])

    def test_rank_state_dict_copies_shard_views(self, untied_config):
        """Copy-on-save: a saved payload must not change when training
        continues (shards are views into the live master buffer)."""
        model, engine = make_engine(untied_config, world_size=2)
        train_steps(model, engine, untied_config, 1)
        payload = engine.rank_state_dict(0)
        frozen = {g: arr.copy() for g, arr in payload["fp32_flat_groups"].items()}
        train_steps(model, engine, untied_config, 2)
        for g, arr in payload["fp32_flat_groups"].items():
            np.testing.assert_array_equal(arr, frozen[g])
            assert not np.array_equal(arr, engine._shard_params[g][0].data)

    def test_gathered_master_is_view_in_fused_mode(self, untied_config):
        _, engine = make_engine(untied_config, world_size=2)
        master = engine._gathered_master(0)
        assert np.shares_memory(master, engine._master_bufs[0])

    def test_per_step_allocations_do_not_scale_with_steps(self, untied_config):
        """Zero-allocation claim: heap growth over 3N steps stays within
        noise of heap growth over N steps (no step-proportional leak),
        and the traced peak is bounded by transient temporaries."""
        model, engine = make_engine(untied_config, world_size=2)
        train_steps(model, engine, untied_config, 3)  # warm every buffer

        def measure(n):
            tracemalloc.start()
            train_steps(model, engine, untied_config, n)
            current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return current, peak

        current_small, peak_small = measure(2)
        current_large, peak_large = measure(6)
        # Retained heap after the runs must not grow with step count.
        assert current_large < max(4 * abs(current_small), 64 * 1024), (
            current_small, current_large,
        )
        # Peak transient usage is per-step, not per-run.
        assert peak_large < 1.5 * peak_small + 256 * 1024, (peak_small, peak_large)


class TestBiasCorrectionCache:
    def test_cached_pow_bitwise_equals_closed_form(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = AdamW([p], lr=1e-3, betas=(0.9, 0.999))
        for t in range(1, 2000):
            assert opt._beta_pow(0.9, t) == 0.9**t
            assert opt._beta_pow(0.999, t) == 0.999**t
            # Second lookup hits the cache and must return the same bits.
            assert opt._beta_pow(0.9, t) == 0.9**t

    def test_incremental_product_would_diverge(self):
        """Documents WHY the cache recomputes the closed form: a running
        ``bias *= beta`` product leaves the closed form's bit pattern
        within a handful of steps, which would change every loss in the
        trajectory.  If this ever starts passing, the incremental scheme
        becomes admissible — until then it is not."""
        for beta in (0.9, 0.999):
            product, diverged = 1.0, False
            for t in range(1, 50):
                product *= beta
                if product != beta**t:
                    diverged = True
                    break
            assert diverged, f"incremental product unexpectedly exact for beta={beta}"

    def test_states_at_different_steps(self):
        """Cache must not leak a stale pow across states whose step
        counters disagree (e.g. after loading a partial checkpoint)."""
        p1, p2 = Parameter(np.zeros(2, np.float32)), Parameter(np.zeros(2, np.float32))
        opt = AdamW([p1, p2], lr=1e-2)
        p1.grad = np.ones(2, np.float32)
        opt.step()  # p1 at step 1, p2 never stepped
        p1.grad = np.ones(2, np.float32)
        p2.grad = np.ones(2, np.float32)
        opt.step()  # p1 at step 2, p2 at step 1 — both in one pass
        assert opt.state[id(p1)]["step"] == 2
        assert opt.state[id(p2)]["step"] == 1
        # Cross-check against an unfused optimizer driven identically.
        q1, q2 = Parameter(np.zeros(2, np.float32)), Parameter(np.zeros(2, np.float32))
        ref = AdamW([q1, q2], lr=1e-2, fused=False)
        q1.grad = np.ones(2, np.float32)
        ref.step()
        q1.grad = np.ones(2, np.float32)
        q2.grad = np.ones(2, np.float32)
        ref.step()
        np.testing.assert_array_equal(p1.data, q1.data)
        np.testing.assert_array_equal(p2.data, q2.data)


class TestBufferDonatingPrimitives:
    def test_quantize_out_matches_allocating(self, rng):
        x = rng.standard_normal(257).astype(np.float32)
        for dtype in (DType.BF16, DType.FP16, DType.FP32):
            out = np.empty(257, dtype=np.float32)
            result = quantize(x, dtype, out=out)
            assert result is out
            np.testing.assert_array_equal(out, quantize(x, dtype))

    def test_quantize_out_accepts_non_contiguous_buffers(self, rng):
        """Writes must land in the caller's buffer even when a reshape of
        ``out`` would be a copy (non-contiguous out with a different
        shape) — a silent-discard regression caught in review."""
        x = rng.standard_normal(6).astype(np.float32)
        for dtype in (DType.BF16, DType.FP16, DType.FP32):
            backing = np.zeros((3, 4), dtype=np.float32)
            out = backing[:, :2]  # non-contiguous, shape (3, 2), size 6
            result = quantize(x, dtype, out=out)
            assert result is out
            np.testing.assert_array_equal(
                out.reshape(-1), quantize(x, dtype).reshape(-1)
            )

    def test_quantize_out_may_alias_input(self, rng):
        x = rng.standard_normal(64).astype(np.float32)
        expected = quantize(x, DType.BF16)
        result = quantize(x, DType.BF16, out=x)
        assert result is x
        np.testing.assert_array_equal(x, expected)

    def test_pad_out_reuses_buffer_and_rezeroes_tail(self, rng):
        part = GroupPartition(numel=10, world_size=4)
        buf = np.full(part.padded_numel, 7.0, dtype=np.float32)
        flat = rng.standard_normal(10).astype(np.float32)
        out = part.pad(flat, out=buf)
        assert out is buf
        np.testing.assert_array_equal(buf, part.pad(flat))
        assert (buf[10:] == 0).all()

    def test_shard_views_share_memory_and_roundtrip(self, rng):
        part = GroupPartition(numel=13, world_size=4)
        padded = part.pad(rng.standard_normal(13).astype(np.float32))
        views = part.shard_views(padded)
        assert all(np.shares_memory(v, padded) for v in views)
        np.testing.assert_array_equal(np.concatenate(views), padded)
        with pytest.raises(Exception):
            part.shard_views(padded[:-1])

    def test_reduce_scatter_into_matches_allocating(self, rng):
        comm_a, comm_b = SimComm(4), SimComm(4)
        bufs = [rng.standard_normal(8).astype(np.float32) for _ in range(4)]
        expected = comm_a.reduce_scatter_mean([b.copy() for b in bufs])
        out = np.empty(8, dtype=np.float32)
        views = comm_b.reduce_scatter_mean_into([b.copy() for b in bufs], out=out)
        for exp, view in zip(expected, views):
            np.testing.assert_array_equal(exp, view)
            assert np.shares_memory(view, out)
        assert comm_a.stats.bytes_by_op == comm_b.stats.bytes_by_op

    def test_reduce_scatter_into_identity_aliases_input(self):
        comm = SimComm(2)
        buf = np.arange(8, dtype=np.float32)
        views = comm.reduce_scatter_mean_into([buf, buf], out=buf)
        np.testing.assert_array_equal(views[0], np.arange(4, dtype=np.float32))
        assert np.shares_memory(views[1], buf)

    def test_all_gather_into_matches_allocating_and_skips_in_place(self):
        comm_a, comm_b = SimComm(3), SimComm(3)
        big = np.arange(12, dtype=np.float32)
        shards = [big[i * 4 : (i + 1) * 4] for i in range(3)]
        expected = comm_a.all_gather(shards)
        result = comm_b.all_gather_into(shards, out=big)
        assert result is big
        np.testing.assert_array_equal(result, expected)
        assert comm_a.stats.bytes_by_op == comm_b.stats.bytes_by_op
        # Foreign shards are copied into place.
        out = np.zeros(12, dtype=np.float32)
        np.testing.assert_array_equal(
            comm_b.all_gather_into(shards, out=out), expected
        )

    def test_into_variants_validate_like_the_originals(self):
        comm = SimComm(2)
        with pytest.raises(DistError):
            comm.reduce_scatter_mean_into([np.zeros(3), np.zeros(3)], out=np.zeros(3))
        with pytest.raises(DistError):
            comm.reduce_scatter_mean_into(
                [np.zeros(4), np.zeros(4)], out=np.zeros(2, dtype=np.float32)
            )
        with pytest.raises(DistError):
            comm.all_gather_into([np.zeros(2), np.zeros(2)], out=np.zeros(3))


class TestFusedEngineByteAccounting:
    @pytest.mark.parametrize("world_size", [1, 2, 4])
    def test_fused_and_reference_charge_identical_bytes(self, untied_config, world_size):
        (mf, ef), (mr, er) = _engine_pair(untied_config, world_size)
        train_steps(mf, ef, untied_config, 2)
        train_steps(mr, er, untied_config, 2)
        assert ef.comm.stats.bytes_by_op == er.comm.stats.bytes_by_op
        assert ef.comm.stats.calls_by_op == er.comm.stats.calls_by_op


class TestCommTrafficSurfacing:
    def test_plan_step_traffic_matches_live_engine(self, untied_config):
        from repro.strategies import plan_step_traffic

        model, engine = make_engine(untied_config, world_size=3)
        train_steps(model, engine, untied_config, 4)
        plan = plan_step_traffic(untied_config, world_size=3)
        live = engine.comm.stats.bytes_by_op
        assert live["reduce_scatter"] / 4 == pytest.approx(plan.reduce_scatter_bytes)
        assert live["all_gather"] / 4 == pytest.approx(plan.all_gather_bytes)
        assert plan.num_groups == len(engine.group_meta)

    def test_plan_step_traffic_zero_at_world_size_one(self, untied_config):
        from repro.strategies import plan_step_traffic

        plan = plan_step_traffic(untied_config, world_size=1)
        assert plan.total_bytes == 0.0
        assert plan.padded_numel > 0

    def test_train_result_carries_comm_traffic(self, trained_run):
        _, result, _ = trained_run
        bytes_by_op = result.comm_traffic["bytes_by_op"]
        assert bytes_by_op["reduce_scatter"] > 0
        assert bytes_by_op["all_gather"] > 0
        assert result.comm_traffic["calls_by_op"]["reduce_scatter"] > 0

    def test_log_history_carries_cumulative_comm_bytes(self, trained_run):
        trainer, _, _ = trained_run
        entries = [e for e in trainer.state.log_history if "comm_bytes" in e]
        assert entries, "logged steps should carry comm_bytes"
        values = [e["comm_bytes"] for e in entries]
        assert values == sorted(values)  # cumulative, monotone
        assert values[-1] > 0
