"""The merge service: protocol, admission, queue, dedup, and the daemon.

The end-to-end classes drive a real server over a unix socket (via
``serve_in_thread``) against the session-scoped trained run, including
the headline invariant: N concurrent clients submitting interleaved
merge/reshard jobs produce outputs bitwise-identical to serial one-shot
CLI runs (modulo the manifest's self-referential output path).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import shutil
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.tailor import LLMTailor
from repro.dist.reshard import reshard_checkpoint
from repro.io.retention import prune_checkpoints
from repro.io.storage import BlobStore, GroupCache, group_key
from repro.serve import (
    AdmissionController,
    Job,
    JobQueue,
    JobSpec,
    JobTimeline,
    ServeClient,
    ServeConfig,
    TenantQuota,
    estimate_job_cost,
    load_job_file,
    parse_job,
    serve_in_thread,
)
from repro.serve.journal import JobJournal, replay_journal
from repro.util.errors import ConfigError


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _short_socket() -> str:
    """A socket path safely under the 108-char AF_UNIX limit."""
    return os.path.join(tempfile.mkdtemp(prefix="st", dir="/tmp"), "s.sock")


def _digest(root: Path) -> str:
    """Content hash of a checkpoint dir, output-path self-reference masked."""
    root = Path(root)
    h = hashlib.sha256()
    for p in sorted(root.rglob("*")):
        if not p.is_file():
            continue
        h.update(p.relative_to(root).as_posix().encode())
        data = p.read_bytes()
        if p.name.endswith(".json"):
            data = data.replace(str(root).encode(), b"<OUT>")
        h.update(data)
    return h.hexdigest()


def _recipe_doc(run: Path) -> dict:
    return {
        "base_checkpoint": str(run / "checkpoint-24"),
        "slices": [{"slot": "layers.0-1", "source": str(run / "checkpoint-16")}],
        "options": {"stream": True},
    }


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory) -> Path:
    """A short full-strategy run (checkpoints at 8/16/24, world size 2)."""
    from repro.train import TrainConfig, Trainer

    out = tmp_path_factory.mktemp("serve-run") / "run"
    cfg = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="full", checkpoint_interval=8,
        output_dir=str(out), world_size=2, micro_batch_size=2,
        grad_accum_steps=1, seq_len=32, log_every=100,
    )
    Trainer(cfg).train()
    return out


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_parse_valid_job(self):
        spec = parse_job({"tenant": "a", "kind": "plan", "priority": 2,
                          "params": {"model": "tiny-qwen", "strategy": "full"}})
        assert spec.tenant == "a" and spec.priority == 2
        assert parse_job(spec.to_dict()) == spec  # round-trips

    @pytest.mark.parametrize("doc", [
        {"kind": "plan", "params": {"model": "m", "strategy": "full"}},  # no tenant
        {"tenant": "a", "kind": "bogus"},
        {"tenant": "a", "kind": "plan", "params": {"model": "m"}},  # missing strategy
        {"tenant": "a", "kind": "diff", "params": {
            "checkpoint_a": "x", "checkpoint_b": "y", "typo": 1}},
        {"tenant": "a", "kind": "merge", "params": {}},  # neither recipe form
        {"tenant": "a", "kind": "merge", "params": {
            "recipe": "r.yaml", "recipe_doc": {}}},  # both recipe forms
        {"tenant": "a", "kind": "reshard", "params": {
            "checkpoint": "c", "output": "o", "target_world_size": 0}},
        {"tenant": "a", "kind": "plan", "priority": "high",
         "params": {"model": "m", "strategy": "full"}},
        {"tenant": "a", "kind": "plan", "surprise": 1,
         "params": {"model": "m", "strategy": "full"}},
    ])
    def test_parse_rejects_malformed(self, doc):
        with pytest.raises(ConfigError):
            parse_job(doc)

    def test_job_file_single_and_list(self, tmp_path):
        single = tmp_path / "one.json"
        single.write_text(json.dumps(
            {"tenant": "a", "kind": "plan",
             "params": {"model": "m", "strategy": "full"}}))
        assert len(load_job_file(single)) == 1

        many = tmp_path / "many.json"
        many.write_text(json.dumps({"tenant": "shared", "jobs": [
            {"kind": "plan", "params": {"model": "m", "strategy": "full"}},
            {"tenant": "own", "kind": "plan",
             "params": {"model": "m", "strategy": "full"}},
        ]}))
        jobs = load_job_file(many)
        assert [j.tenant for j in jobs] == ["shared", "own"]

    def test_job_file_yaml(self, tmp_path):
        path = tmp_path / "jobs.yaml"
        path.write_text(
            "tenant: t\n"
            "jobs:\n"
            "  - kind: plan\n"
            "    params:\n"
            "      model: tiny-qwen\n"
            "      strategy: full\n"
        )
        (job,) = load_job_file(path)
        assert job.tenant == "t" and job.kind == "plan"

    def test_job_file_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"jobs": []}))
        with pytest.raises(ConfigError):
            load_job_file(path)


# ---------------------------------------------------------------------------
# admission
# ---------------------------------------------------------------------------

def _plan_spec(tenant="t") -> JobSpec:
    return JobSpec(tenant=tenant, kind="plan",
                   params={"model": "tiny-qwen", "strategy": "full"})


class TestAdmission:
    def test_force_admit_bypasses_checks_but_charges(self):
        # Journal replay path: a tenant crashed at its inflight limit
        # must replay (no quota re-check), yet the budget is charged so
        # finish() releases exactly what was taken — finishing the
        # replayed job must not free budget a live job still holds.
        ctl = AdmissionController(TenantQuota(max_inflight=1))
        spec = _plan_spec()
        cost = estimate_job_cost(spec)
        assert ctl.admit(spec, cost).accepted
        ctl.force_admit(spec, cost)  # would be rejected by admit()
        assert ctl.stats()["t"]["inflight"] == 2
        ctl.finish(spec, cost)  # replayed job done
        assert ctl.stats()["t"]["inflight"] == 1
        assert not ctl.admit(spec, cost).accepted  # live job still charged
        ctl.finish(spec, cost)
        assert ctl.stats()["t"]["inflight"] == 0

    def test_inflight_quota(self):
        ctl = AdmissionController(TenantQuota(max_inflight=2))
        spec = _plan_spec()
        cost = estimate_job_cost(spec)
        assert ctl.admit(spec, cost).accepted
        assert ctl.admit(spec, cost).accepted
        third = ctl.admit(spec, cost)
        assert not third.accepted
        assert third.retry_after >= 0.05
        ctl.finish(spec, cost)
        assert ctl.admit(spec, cost).accepted  # slot freed

    def test_byte_quota_and_isolation(self, run_dir):
        spec = JobSpec(tenant="big", kind="diff", params={
            "checkpoint_a": str(run_dir / "checkpoint-16"),
            "checkpoint_b": str(run_dir / "checkpoint-24"),
        })
        cost = estimate_job_cost(spec)
        assert cost.total_bytes > 0
        ctl = AdmissionController(TenantQuota(max_queued_bytes=cost.total_bytes))
        assert ctl.admit(spec, cost).accepted
        rejected = ctl.admit(spec, cost)  # second would exceed the budget
        assert not rejected.accepted and "max_queued_bytes" in rejected.reason
        # Another tenant has its own budget.
        other = JobSpec(tenant="other", kind=spec.kind, params=spec.params)
        assert ctl.admit(other, cost).accepted

    def test_estimate_deterministic(self, run_dir):
        spec = JobSpec(tenant="t", kind="reshard", params={
            "checkpoint": str(run_dir / "checkpoint-24"),
            "output": "/tmp/ignored", "target_world_size": 3,
        })
        assert estimate_job_cost(spec) == estimate_job_cost(spec)

    def test_merge_cost_scales_with_cache_mode(self, run_dir):
        base = {"recipe_doc": _recipe_doc(run_dir)}
        per_ckpt = estimate_job_cost(JobSpec(
            tenant="t", kind="merge",
            params={**base, "cache_mode": "per-checkpoint"}))
        none = estimate_job_cost(JobSpec(
            tenant="t", kind="merge", params={**base, "cache_mode": "none"}))
        # cache_mode none reloads per slot: strictly more bytes.
        assert none.bytes_read > per_ckpt.bytes_read > 0

    def test_missing_checkpoint_rejected(self, tmp_path):
        spec = JobSpec(tenant="t", kind="reshard", params={
            "checkpoint": str(tmp_path / "nope"), "output": "o",
            "target_world_size": 2})
        with pytest.raises(ConfigError):
            estimate_job_cost(spec)


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------

def _job(tenant="t", priority=0, n=[0]) -> Job:
    n[0] += 1
    spec = JobSpec(tenant=tenant, kind="plan", priority=priority,
                   params={"model": "m", "strategy": "full"})
    return Job(id=f"j{n[0]}", spec=spec, cost=estimate_job_cost(_plan_spec()))


class TestJobQueue:
    def test_priority_then_fifo(self):
        async def scenario():
            q = JobQueue()
            low1, low2 = _job(priority=0), _job(priority=0)
            high = _job(priority=5)
            await q.put(low1)
            await q.put(low2)
            await q.put(high)
            order = [await q.get() for _ in range(3)]
            return order

        order = asyncio.run(scenario())
        assert [j.spec.priority for j in order] == [5, 0, 0]
        assert order[1].id < order[2].id  # FIFO within a priority level

    def test_close_drains_then_none(self):
        async def scenario():
            q = JobQueue()
            await q.put(_job())
            await q.close()
            with pytest.raises(RuntimeError):
                await q.put(_job())
            first = await q.get()
            sentinel = await q.get()
            return first, sentinel

        first, sentinel = asyncio.run(scenario())
        assert first is not None and sentinel is None


# ---------------------------------------------------------------------------
# blob store + group cache
# ---------------------------------------------------------------------------

class TestBlobStore:
    def test_put_dedups(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        arrays = {"fp32": np.arange(6, dtype=np.float32)}
        key = group_key(0xABCD, 6)
        assert store.put(key, arrays) is True
        assert store.put(key, arrays) is False  # dedup: no-op
        got = store.get(key)
        np.testing.assert_array_equal(got["fp32"], arrays["fp32"])
        assert store.get("ffffffff-1") is None

    def test_get_races_sweep_as_miss(self, tmp_path):
        # A concurrent sweep (another tenant's retention pass) may
        # unlink the object between lookup and read; get() must degrade
        # to a cache miss, not fail the reading job.
        store = BlobStore(tmp_path / "blobs")
        key = group_key(0x1234, 4)
        store.put(key, {"fp32": np.arange(4, dtype=np.float32)})
        store._object_path(key).unlink()  # sweep won the race
        assert store.get(key) is None

    def test_refcount_lifecycle(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        key = group_key(1, 4)
        store.put(key, {"fp32": np.zeros(4, dtype=np.float32)})
        assert store.add_refs([key], "t1:/a") == 1
        assert store.add_refs([key], "t1:/a") == 0  # idempotent
        assert store.add_refs([key], "t2:/b") == 1
        assert store.owners(key) == ["t1:/a", "t2:/b"]
        # One owner leaves: object must survive the sweep.
        assert store.release("t1:/a") == [key]
        assert store.sweep() == []
        assert store.contains(key)
        # Last owner leaves: now it is garbage.
        store.release("t2:/b")
        assert store.sweep() == [key]
        assert not store.contains(key)

    def test_refs_persist_across_reopen(self, tmp_path):
        root = tmp_path / "blobs"
        key = group_key(2, 4)
        BlobStore(root).add_refs([key], "t:/x")
        reopened = BlobStore(root)
        assert reopened.owners(key) == ["t:/x"]

    def test_stats(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        key = group_key(3, 4)
        store.put(key, {"fp32": np.zeros(4, dtype=np.float32)})
        store.add_refs([key], "a:/1")
        store.add_refs([key], "b:/2")
        stats = store.stats()
        assert stats["objects"] == 1 and stats["total_refs"] == 2
        assert stats["dedup_factor"] == 2.0


class TestGroupCache:
    def test_hit_miss_and_eviction(self):
        cache = GroupCache(max_bytes=2 * 40)  # room for two 10-float groups
        a = {"fp32": np.zeros(10, dtype=np.float32)}
        assert cache.get("k1") is None
        cache.put("k1", a)
        assert cache.get("k1") is not None
        cache.put("k2", a)
        cache.put("k3", a)  # evicts the LRU entry (k1)
        assert cache.get("k1") is None
        assert cache.stats.evictions >= 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_store_write_through_and_fallback(self, tmp_path):
        store = BlobStore(tmp_path / "blobs")
        cache = GroupCache(max_bytes=1 << 20, store=store)
        arrays = {"fp32": np.arange(4, dtype=np.float32)}
        cache.put("k", arrays)
        assert store.contains("k")  # write-through
        cold = GroupCache(max_bytes=1 << 20, store=store)  # fresh process
        got = cold.get("k")
        np.testing.assert_array_equal(got["fp32"], arrays["fp32"])
        assert cold.stats.store_hits == 1

    def test_metadata_memo(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"payload")
        cache = GroupCache()
        calls = []

        def loader(p):
            calls.append(p)
            return {"meta": 1}

        meta1, fresh1 = cache.metadata(path, loader)
        meta2, fresh2 = cache.metadata(path, loader)
        assert fresh1 and not fresh2 and meta1 == meta2 and len(calls) == 1
        path.write_bytes(b"payload-changed!")  # size changes -> memo invalid
        _, fresh3 = cache.metadata(path, loader)
        assert fresh3 and len(calls) == 2


# ---------------------------------------------------------------------------
# retention <-> blob store ownership (the dedup'd-group deletion fix)
# ---------------------------------------------------------------------------

class TestRetentionBlobOwnership:
    def test_shared_group_survives_one_tenants_prune(self, run_dir, tmp_path):
        # Two tenants with byte-identical runs (copied): their shard
        # groups dedup to the same objects in the store.
        run_a = tmp_path / "tenant-a"
        run_b = tmp_path / "tenant-b"
        shutil.copytree(run_dir, run_a)
        shutil.copytree(run_dir, run_b)
        store = BlobStore(tmp_path / "blobs")

        from repro.serve.jobs import register_checkpoint_refs

        timeline = JobTimeline()
        key_count = 0
        for run, tenant in ((run_a, "a"), (run_b, "b")):
            for step in (8, 16, 24):
                added = register_checkpoint_refs(
                    store, tenant, run / f"checkpoint-{step}", timeline)
                key_count += added
        stats = store.stats()
        assert stats["dedup_factor"] == 2.0  # every key claimed by both

        # Seed one shared object so the sweep has something to protect.
        from repro.serve.jobs import _shard_group_keys
        from repro.io.layout import CheckpointPaths

        keys = _shard_group_keys(CheckpointPaths(run_a / "checkpoint-8"))
        store.put(keys[0], {"fp32": np.zeros(2, dtype=np.float32)})

        # Tenant a's retention prunes checkpoint-8 (oldest).  The object
        # is still owned by tenant b -> must survive.
        removed = prune_checkpoints(run_a, keep_last=2, blob_store=store,
                                    tenant="a")
        assert removed == [8]
        assert store.contains(keys[0])
        # Tenant b prunes too: last owner gone -> object reclaimed.
        prune_checkpoints(run_b, keep_last=2, blob_store=store, tenant="b")
        assert not store.contains(keys[0])

    def test_prune_without_store_unchanged(self, run_dir, tmp_path):
        run = tmp_path / "plain"
        shutil.copytree(run_dir, run)
        assert prune_checkpoints(run, keep_last=2) == [8]


# ---------------------------------------------------------------------------
# job timeline + journal
# ---------------------------------------------------------------------------

class TestJobTimeline:
    def test_mirrors_fault_timeline_api(self):
        tl = JobTimeline()
        tl.record("admitted", total_bytes=10)
        tl.record("start", worker=0)
        assert tl.kinds() == ["admitted", "start"]
        doc = tl.to_dict()
        assert [e["kind"] for e in doc["events"]] == ["admitted", "start"]
        assert all(e["t"] >= 0 for e in doc["events"])
        assert "2 event(s)" in tl.summary()

    def test_counters_serialize(self):
        tl = JobTimeline()
        tl.cache_hits = 3
        assert tl.to_dict()["cache_hits"] == 3


class TestJournal:
    def test_replay_pairs_submit_done(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        spec = _plan_spec()
        journal.submitted("job-1", spec)
        journal.submitted("job-2", spec)
        journal.finished("job-1", "done")
        journal.close()
        pending = replay_journal(path)
        assert [job_id for job_id, _ in pending] == ["job-2"]
        assert pending[0][1] == spec

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        journal.submitted("job-1", _plan_spec())
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"event":"done","id":"jo')  # crash mid-append
        assert [j for j, _ in replay_journal(path)] == ["job-1"]

    def test_malformed_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json\n{"event":"done","id":"x"}\n')
        with pytest.raises(ConfigError):
            replay_journal(path)

    def test_missing_journal_is_empty(self, tmp_path):
        assert replay_journal(tmp_path / "absent.jsonl") == []


# ---------------------------------------------------------------------------
# the daemon, end to end
# ---------------------------------------------------------------------------

class TestServerEndToEnd:
    def test_ping_status_stats_and_bad_ops(self):
        sock = _short_socket()
        with serve_in_thread(ServeConfig(socket_path=sock, workers=1)):
            with ServeClient(sock) as client:
                assert client.ping()
                bad = client.request({"op": "nope"})
                assert not bad["ok"] and "unknown op" in bad["error"]
                missing = client.status("job-999999")
                assert not missing["ok"]
                # A malformed submit is rejected but the connection lives.
                rejected = client.submit({"tenant": "t", "kind": "bogus"})
                assert not rejected["ok"]
                assert client.ping()
                assert client.stats()["jobs"]["submitted"] == 0

    def test_submit_cost_matches_offline_plan(self, run_dir, tmp_path):
        from repro.strategies import plan_serve_cost

        job_file = tmp_path / "jobs.json"
        job_file.write_text(json.dumps({"jobs": [
            {"tenant": "t", "kind": "diff", "params": {
                "checkpoint_a": str(run_dir / "checkpoint-16"),
                "checkpoint_b": str(run_dir / "checkpoint-24")}},
            {"tenant": "t", "kind": "plan", "params": {
                "model": "tiny-qwen", "strategy": "full"}},
        ]}))
        offline = plan_serve_cost(job_file)
        sock = _short_socket()
        with serve_in_thread(ServeConfig(socket_path=sock, workers=1)):
            with ServeClient(sock) as client:
                for spec, expected in zip(load_job_file(job_file),
                                          offline.entries):
                    response = client.submit(spec)
                    assert response["ok"]
                    # The live server charges exactly the offline estimate.
                    assert response["cost"] == expected["cost"]

    def test_quota_rejection_carries_retry_after(self, run_dir):
        sock = _short_socket()
        config = ServeConfig(socket_path=sock, workers=1,
                             quota=TenantQuota(max_queued_bytes=1))
        spec = {"tenant": "t", "kind": "diff", "params": {
            "checkpoint_a": str(run_dir / "checkpoint-16"),
            "checkpoint_b": str(run_dir / "checkpoint-24")}}
        with serve_in_thread(config):
            with ServeClient(sock) as client:
                response = client.submit(spec)
                assert not response["ok"]
                assert response["retry_after"] >= 0.05
                assert "max_queued_bytes" in response["error"]
                assert client.stats()["jobs"]["rejected"] == 1

    def test_unestimatable_job_rejected_at_submit(self, tmp_path):
        # Admission estimates from disk state: a job over checkpoints
        # that do not exist fails the submit, never reaching the queue.
        sock = _short_socket()
        with serve_in_thread(ServeConfig(socket_path=sock, workers=1)):
            with ServeClient(sock) as client:
                response = client.submit({"tenant": "t", "kind": "diff",
                                          "params": {
                                              "checkpoint_a": str(tmp_path / "a"),
                                              "checkpoint_b": str(tmp_path / "b")}})
                assert not response["ok"]
                assert "not found" in response["error"]
                assert client.stats()["jobs"]["submitted"] == 0

    def test_failed_job_reports_error(self, run_dir, tmp_path):
        # A job that passes admission but whose engine run fails turns
        # into status=failed with the engine error, not a dead server.
        doc = _recipe_doc(run_dir)
        doc["slices"] = [{"slot": "layers.0",
                          "source": str(tmp_path / "missing-ckpt")}]
        sock = _short_socket()
        with serve_in_thread(ServeConfig(socket_path=sock, workers=1)):
            with ServeClient(sock) as client:
                response = client.submit({
                    "tenant": "t", "kind": "merge",
                    "params": {"recipe_doc": doc,
                               "output": str(tmp_path / "doomed")}})
                assert response["ok"]
                job = client.wait(response["id"], timeout=120)["job"]
                assert job["status"] == "failed"
                assert job["error"]
                assert client.ping()  # service survived the failure

    def test_job_timeline_in_response(self, run_dir, tmp_path):
        sock = _short_socket()
        blob_root = tmp_path / "blobs"
        config = ServeConfig(socket_path=sock, workers=1,
                             blob_root=str(blob_root))
        with serve_in_thread(config):
            with ServeClient(sock) as client:
                job = client.submit_and_wait({
                    "tenant": "t", "kind": "merge",
                    "params": {"recipe_doc": _recipe_doc(run_dir),
                               "output": str(tmp_path / "m1")}})
                assert job["status"] == "done"
                kinds = [e["kind"] for e in job["timeline"]["events"]]
                assert kinds[0] == "admitted" and "merged" in kinds
                assert job["timeline"]["blob_refs_added"] > 0

    def test_journal_replay_completes_lost_job(self, run_dir, tmp_path):
        journal_path = tmp_path / "j.jsonl"
        out = tmp_path / "replayed-merge"
        # Simulate a daemon that crashed after admitting a merge job.
        journal = JobJournal(journal_path)
        journal.submitted("job-000042", JobSpec(
            tenant="t", kind="merge",
            params={"recipe_doc": _recipe_doc(run_dir), "output": str(out)}))
        journal.close()

        sock = _short_socket()
        config = ServeConfig(socket_path=sock, workers=1,
                             journal_path=str(journal_path))
        with serve_in_thread(config):
            with ServeClient(sock) as client:
                job = client.wait("job-000042", timeout=120)["job"]
                assert job["status"] == "done"
                assert client.stats()["jobs"]["replayed"] == 1
        assert out.exists()
        # The journal now records the replayed job as done.
        assert replay_journal(journal_path) == []

    def test_replay_seeds_job_seq_and_charges_tenant(self, tmp_path):
        # New ids must never collide with replayed ones, and a replayed
        # job's budget must be charged/released symmetrically.
        journal_path = tmp_path / "j.jsonl"
        journal = JobJournal(journal_path)
        journal.submitted("job-000042", _plan_spec())
        journal.close()

        sock = _short_socket()
        config = ServeConfig(socket_path=sock, workers=1,
                             journal_path=str(journal_path))
        with serve_in_thread(config) as handle:
            with ServeClient(sock) as client:
                response = client.submit(_plan_spec())
                assert response["ok"]
                assert response["id"] == "job-000043"  # seeded past replay
                assert client.wait(response["id"], timeout=60)["job"][
                    "status"] == "done"
                assert client.wait("job-000042", timeout=60)["job"][
                    "status"] == "done"
                stats = client.stats()
                assert stats["jobs"]["replayed"] == 1
                # force-admit charge fully released on finish
                assert stats["tenants"]["t"]["inflight"] == 0
            service = handle.service
        assert set(service.jobs) == {"job-000042", "job-000043"}

    def test_submit_during_queue_close_releases_charge(self, tmp_path):
        # The drain race: shutdown closes the queue while a submit's
        # cost estimate is off in the executor.  The client must get the
        # normal draining response, the admission charge must be
        # released, and the journaled submit must not replay.
        journal_path = tmp_path / "j.jsonl"
        sock = _short_socket()
        config = ServeConfig(socket_path=sock, workers=1,
                             journal_path=str(journal_path))
        handle = serve_in_thread(config)
        service = handle.service
        original = service._estimate

        def estimate_then_close(spec):
            service.queue._closed = True  # shutdown wins the race
            return original(spec)

        service._estimate = estimate_then_close
        with ServeClient(sock) as client:
            response = client.submit(_plan_spec())
        assert not response["ok"]
        assert response["error"] == "service is draining"
        assert response["retry_after"] == 1.0
        assert service.admission.stats()["t"]["inflight"] == 0  # released
        assert service.jobs == {}  # untracked
        handle.stop()
        assert replay_journal(journal_path) == []  # journaled terminal

    def test_finished_jobs_evicted_beyond_keep(self):
        sock = _short_socket()
        config = ServeConfig(socket_path=sock, workers=1, keep_finished=2)
        with serve_in_thread(config) as handle:
            with ServeClient(sock) as client:
                ids = []
                for _ in range(4):
                    job = client.submit_and_wait(_plan_spec(), timeout=60)
                    assert job["status"] == "done"
                    ids.append(job["id"])
                assert not client.status(ids[0])["ok"]  # evicted
                assert client.status(ids[-1])["ok"]  # retained
            assert set(handle.service.jobs) == set(ids[-2:])

    def test_max_jobs_drains_and_exits(self):
        sock = _short_socket()
        handle = serve_in_thread(
            ServeConfig(socket_path=sock, workers=1, max_jobs=2))
        with ServeClient(sock) as client:
            for _ in range(2):
                job = client.submit_and_wait(_plan_spec())
                assert job["status"] == "done"
        handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()

    def test_shutdown_op_drains(self):
        sock = _short_socket()
        handle = serve_in_thread(ServeConfig(socket_path=sock, workers=1))
        with ServeClient(sock) as client:
            response = client.submit(_plan_spec())
            assert response["ok"]
            assert client.shutdown()["ok"]
        handle.thread.join(timeout=30)
        assert not handle.thread.is_alive()
        assert handle.service.jobs[response["id"]].status == "done"  # drained


class TestSigterm:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        import signal
        import subprocess
        import sys
        import time

        sock = _short_socket()
        journal = tmp_path / "j.jsonl"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--socket", sock,
             "--workers", "1", "--journal", str(journal)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "server never bound"
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.05)
            with ServeClient(sock) as client:
                response = client.submit(_plan_spec())
                assert response["ok"]
                client.wait(response["id"], timeout=60)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "served 1 job(s)" in out
        # The drained job is journaled done: nothing replays next boot.
        assert replay_journal(journal) == []


class TestConcurrentClientsBitwise:
    """N async clients, interleaved merge/reshard jobs, bitwise outputs."""

    def test_concurrent_matches_serial_one_shot(self, run_dir, tmp_path):
        tenants = ["alpha", "beta", "gamma", "delta"]
        runs = {}
        for tenant in tenants:
            run = tmp_path / f"run-{tenant}"
            shutil.copytree(run_dir, run)
            runs[tenant] = run

        # Serial one-shot references, one per unique job shape.
        ref_merge = {}
        ref_reshard = {}
        for tenant, run in runs.items():
            out = tmp_path / f"ref-merge-{tenant}"
            LLMTailor.from_dict(_recipe_doc(run)).merge(out)
            ref_merge[tenant] = _digest(out)
            out = tmp_path / f"ref-reshard-{tenant}"
            reshard_checkpoint(run / "checkpoint-24", out, 3)
            ref_reshard[tenant] = _digest(out)

        sock = _short_socket()
        config = ServeConfig(
            socket_path=sock, workers=2,
            blob_root=str(tmp_path / "blobs"),
            quota=TenantQuota(max_inflight=8, max_queued_bytes=1 << 32),
        )
        outputs: dict[str, tuple[str, Path]] = {}
        errors: list[str] = []

        def client_thread(tenant: str, run: Path) -> None:
            try:
                with ServeClient(sock) as client:
                    jobs = []
                    for i in range(2):  # interleave merge and reshard
                        merge_out = tmp_path / f"srv-merge-{tenant}-{i}"
                        r = client.submit(JobSpec(
                            tenant=tenant, kind="merge",
                            params={"recipe_doc": _recipe_doc(run),
                                    "output": str(merge_out)}))
                        assert r["ok"], r
                        jobs.append((r["id"], "merge", merge_out))
                        reshard_out = tmp_path / f"srv-reshard-{tenant}-{i}"
                        r = client.submit(JobSpec(
                            tenant=tenant, kind="reshard",
                            params={"checkpoint": str(run / "checkpoint-24"),
                                    "output": str(reshard_out),
                                    "target_world_size": 3}))
                        assert r["ok"], r
                        jobs.append((r["id"], "reshard", reshard_out))
                    for job_id, kind, out in jobs:
                        result = client.wait(job_id, timeout=300)
                        assert result["ok"] and result["job"]["status"] == "done", result
                        outputs[f"{tenant}:{job_id}"] = (f"{tenant}:{kind}", out)
            except Exception as exc:  # surfaced below: threads may not fail a test
                errors.append(f"{tenant}: {exc!r}")

        with serve_in_thread(config) as handle:
            threads = [threading.Thread(target=client_thread, args=(t, runs[t]))
                       for t in tenants]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not errors, errors
            stats = handle.service.stats()

        # Every served output is bitwise-identical to its one-shot twin.
        assert len(outputs) == len(tenants) * 4
        for tagged, (key, out) in outputs.items():
            tenant, kind = key.split(":")
            expected = (ref_merge if kind == "merge" else ref_reshard)[tenant]
            assert _digest(out) == expected, f"{tagged} diverged from one-shot"

        # Identical content across tenants dedup'd in the blob store.
        assert stats["blob_store"]["dedup_factor"] >= 2.0
        # Repeat merges were served from the cross-request cache.
        assert stats["cache"]["hits"] > 0
