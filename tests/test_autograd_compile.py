"""The backward-tape compiler: bitwise parity, invalidation, canaries.

The contract under test (see ``docs/autograd.md``): a replayed tape is
**bitwise-identical** to the interpreted backward — losses, leaf
gradients, fp32 masters, Adam moments, and re-quantized weights — and
any structural change to the graph invalidates the program instead of
silently producing wrong gradients.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.autograd import BackwardTape, Tensor, no_grad, silu
from repro.autograd.gradcheck import numerical_grad
from repro.core.groups import tailored_param_groups
from repro.dist import ZeroStage3Engine
from repro.nn import build_model
from repro.optim.lr_scheduler import WarmupCosine
from repro.util.errors import GradError


def _taped_pair(config, world_size, *, lr=1e-3, seed=1):
    """Same-seed (model, engine, tape) twins: one compiled, one interpreted."""
    pair = []
    for compiled in (True, False):
        model = build_model(config, seed=seed)
        engine = ZeroStage3Engine(
            model, config, tailored_param_groups(model, config, 0.01),
            world_size=world_size, lr=lr, fused=True,
        )
        tape = BackwardTape(donate=engine.grad_donation_views()) if compiled else None
        pair.append((model, engine, tape))
    return pair


def _backward(model, tape, ids, labels):
    if tape is not None:
        with tape.capture():
            loss = model.loss(ids, labels)
        tape.backward(loss)
    else:
        loss = model.loss(ids, labels)
        loss.backward()
    return loss


def _assert_engines_bitwise_equal(ea, eb):
    a, b = ea.master_state_dict(), eb.master_state_dict()
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)
    for rank in range(ea.world_size):
        sa, sb = ea.rank_state_dict(rank), eb.rank_state_dict(rank)
        for g in sa["state"]:
            assert sa["state"][g]["step"] == sb["state"][g]["step"]
            for key in ("exp_avg", "exp_avg_sq"):
                np.testing.assert_array_equal(
                    sa["state"][g][key], sb["state"][g][key],
                    err_msg=f"rank {rank} group {g} {key}",
                )
        for g in sa["fp32_flat_groups"]:
            np.testing.assert_array_equal(
                sa["fp32_flat_groups"][g], sb["fp32_flat_groups"][g]
            )


def _assert_models_bitwise_equal(ma, mb):
    sa, sb = ma.state_dict(), mb.state_dict()
    assert set(sa) == set(sb)
    for key in sa:
        np.testing.assert_array_equal(sa[key], sb[key], err_msg=key)


class TestCompiledMatchesInterpreted:
    @pytest.mark.parametrize("world_size", [1, 2, 4])
    @pytest.mark.parametrize("with_scheduler", [False, True])
    def test_bitwise_identical_training(self, untied_config, world_size, with_scheduler):
        (mc, ec, tape), (mi, ei, _) = _taped_pair(untied_config, world_size)
        scheds = []
        if with_scheduler:
            scheds = [
                WarmupCosine(e.reference_optimizer, warmup_steps=2, total_steps=8)
                for e in (ec, ei)
            ]
        data_rng = np.random.default_rng(7)
        ids = data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
        labels = np.roll(ids, -1, axis=1)
        for _ in range(6):
            losses = []
            for model, engine, t in ((mc, ec, tape), (mi, ei, None)):
                engine.zero_grad()
                loss = _backward(model, t, ids, labels)
                engine.step()
                losses.append(loss.item())
            for sched in scheds:
                sched.step()
            assert losses[0] == losses[1]  # bitwise: float equality
        _assert_engines_bitwise_equal(ec, ei)
        _assert_models_bitwise_equal(mc, mi)
        # The whole hot path replays from compiled kernels: one record,
        # every later round a replay, no interpreted-closure fallbacks.
        assert tape.stats.records == 1
        assert tape.stats.replays == 5
        assert tape.stats.kernel_fallbacks == 0
        assert tape.compiled

    @pytest.mark.parametrize("world_size", [1, 2, 4])
    def test_partial_group_steps_interleaved(self, untied_config, world_size):
        """Taped steps compose with manual partial-group steps: a step
        whose gradients were set by hand (not donated) must behave
        identically, and the taped step after it must re-donate."""
        (mc, ec, tape), (mi, ei, _) = _taped_pair(untied_config, world_size)
        rng = np.random.default_rng(3)
        grads = {}

        def partial_step(engine, touched_groups):
            engine.zero_grad()
            for g in touched_groups:
                for i, p in enumerate(engine._params[g]):
                    key = (g, i)
                    if key not in grads:
                        grads[key] = rng.standard_normal(p.data.shape).astype(np.float32)
                    p.grad = grads[key].copy()
            engine.step()

        def taped_step(model, engine, t):
            engine.zero_grad()
            data_rng = np.random.default_rng(11)
            ids = data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
            _backward(model, t, ids, np.roll(ids, -1, axis=1))
            engine.step()

        n_groups = len(ec.group_meta)
        for touched in ([0, 1], [], [n_groups - 1], list(range(0, n_groups, 2))):
            taped_step(mc, ec, tape)
            taped_step(mi, ei, None)
            partial_step(ec, touched)
            partial_step(ei, touched)
        taped_step(mc, ec, tape)
        taped_step(mi, ei, None)
        _assert_engines_bitwise_equal(ec, ei)

    def test_micro_batch_accumulation(self, untied_config):
        """Multiple capture rounds per step accumulate into the donated
        staging views exactly like interpreted ``+=`` on fresh arrays."""
        (mc, ec, tape), (mi, ei, _) = _taped_pair(untied_config, 2)
        data_rng = np.random.default_rng(23)
        batches = [
            data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
            for _ in range(4)
        ]
        for _ in range(3):
            for engine in (ec, ei):
                engine.zero_grad()
            for ids in batches:
                labels = np.roll(ids, -1, axis=1)
                la = _backward(mc, tape, ids, labels)
                lb = _backward(mi, None, ids, labels)
                assert la.item() == lb.item()
            for model in (mc, mi):
                for p in model.parameters():
                    if p.grad is not None:
                        p.grad *= 0.25
            ec.step()
            ei.step()
        _assert_engines_bitwise_equal(ec, ei)


class TestDonation:
    def test_views_alias_staging_buffers(self, untied_config):
        model = build_model(untied_config, seed=1)
        engine = ZeroStage3Engine(
            model, untied_config, tailored_param_groups(model, untied_config, 0.01),
            world_size=2, lr=1e-3, fused=True,
        )
        views = engine.grad_donation_views()
        params = [p for group in engine._params for p in group]
        assert set(views) == {id(p) for p in params}
        for p in params:
            view = views[id(p)]
            assert view.shape == p.data.shape
            assert any(np.shares_memory(view, buf) for buf in engine._grad_bufs)

    def test_reference_engine_returns_empty(self, untied_config):
        model = build_model(untied_config, seed=1)
        engine = ZeroStage3Engine(
            model, untied_config, tailored_param_groups(model, untied_config, 0.01),
            world_size=2, lr=1e-3, fused=False,
        )
        assert engine.grad_donation_views() == {}

    def test_taped_backward_lands_in_donated_views(self, untied_config):
        model = build_model(untied_config, seed=1)
        engine = ZeroStage3Engine(
            model, untied_config, tailored_param_groups(model, untied_config, 0.01),
            world_size=2, lr=1e-3, fused=True,
        )
        views = engine.grad_donation_views()
        tape = BackwardTape(donate=views)
        data_rng = np.random.default_rng(5)
        ids = data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
        labels = np.roll(ids, -1, axis=1)
        for round_i in range(2):  # record round, then replay round
            engine.zero_grad()
            _backward(model, tape, ids, labels)
            if round_i > 0:
                # The record round runs interpreted (fresh grad arrays);
                # every replay round donates straight into the views.
                for p in model.parameters():
                    if p.grad is not None:
                        assert p.grad is views[id(p)]
            engine.step()


class TestTapeLifecycle:
    def _wx_round(self, tape, w, x_data):
        x = Tensor(np.asarray(x_data, dtype=np.float64))
        with tape.capture():
            loss = ((w * x) * (w * x)).sum()
        tape.backward(loss)
        return loss

    def test_shape_change_invalidates_and_rerecords(self):
        w = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        tape = BackwardTape()
        for _ in range(2):
            w.grad = None
            self._wx_round(tape, w, [1.0, 2.0, 3.0, 4.0])
        assert tape.stats.replays == 1
        # Same leaf, different graph shapes mid-run: must re-record.
        w.grad = None
        x = Tensor(np.asarray([1.0, 2.0], dtype=np.float64))
        with tape.capture():
            loss = ((w.reshape((2, 2)) @ x) * (w.reshape((2, 2)) @ x)).sum()
        tape.backward(loss)
        assert tape.stats.invalidations == 1
        assert tape.stats.records == 2
        assert "changed" in tape.stats.last_invalidation
        # Gradient from the re-recorded round matches a fresh interpreted run.
        w_ref = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        loss_ref = ((w_ref.reshape((2, 2)) @ x) * (w_ref.reshape((2, 2)) @ x)).sum()
        loss_ref.backward()
        np.testing.assert_array_equal(w.grad, w_ref.grad)

    def test_param_identity_change_invalidates(self):
        tape = BackwardTape()
        w1 = Tensor(np.ones(4), requires_grad=True)
        self._wx_round(tape, w1, [1.0, 2.0, 3.0, 4.0])
        single_round_grad = w1.grad.copy()
        w1.grad = None
        self._wx_round(tape, w1, [1.0, 2.0, 3.0, 4.0])
        assert tape.stats.replays == 1
        # Same shapes and ops, different leaf object: must not replay
        # against the old parameter.
        w2 = Tensor(np.ones(4), requires_grad=True)
        self._wx_round(tape, w2, [1.0, 2.0, 3.0, 4.0])
        assert tape.stats.invalidations == 1
        assert "leaf parameter" in tape.stats.last_invalidation
        np.testing.assert_array_equal(w2.grad, single_round_grad)

    def test_no_grad_region_invalidates_then_recovers(self):
        w = Tensor(np.ones(4), requires_grad=True)
        tape = BackwardTape()

        def round_(use_no_grad):
            w.grad = None
            x = Tensor(np.asarray([1.0, 2.0, 3.0, 4.0]))
            with tape.capture():
                h = w * x
                if use_no_grad:
                    with no_grad():
                        scale = (h * h).sum()
                    loss = (h * scale.data.item()).sum()
                else:
                    loss = (h * (h * h).sum().data.item()).sum()
            tape.backward(loss)
            return w.grad.copy()

        g0 = round_(False)
        g1 = round_(False)
        np.testing.assert_array_equal(g0, g1)
        # The no_grad region removes nodes from the captured graph: the
        # program must invalidate, and the re-recorded gradient must match
        # an interpreted run of the same (smaller) graph.
        g2 = round_(True)
        assert tape.stats.invalidations == 1
        w_ref = Tensor(np.ones(4), requires_grad=True)
        x = Tensor(np.asarray([1.0, 2.0, 3.0, 4.0]))
        h = w_ref * x
        with no_grad():
            scale = (h * h).sum()
        ((h * scale.data.item()).sum()).backward()
        np.testing.assert_array_equal(g2, w_ref.grad)

    def test_root_outside_capture_disables_tape(self):
        w = Tensor(np.ones(3), requires_grad=True)
        tape = BackwardTape()
        with tape.capture():
            pass  # nothing recorded
        loss = (w * w).sum()  # built outside the capture window
        tape.backward(loss)
        assert tape.stats.disabled_reason is not None
        assert tape.stats.interpreted == 1
        np.testing.assert_array_equal(w.grad, 2.0 * np.ones(3))
        # Disabled tapes keep working — interpreted, still correct.
        w.grad = None
        with tape.capture():
            loss = (w * w).sum()
        tape.backward(loss)
        assert tape.stats.interpreted == 2
        np.testing.assert_array_equal(w.grad, 2.0 * np.ones(3))

    def test_backward_requires_capture_round(self):
        tape = BackwardTape()
        w = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(GradError, match="capture"):
            tape.backward((w * w).sum())

    def test_nested_capture_raises(self):
        tape = BackwardTape()
        with pytest.raises(GradError, match="nested|active"):
            with tape.capture():
                with tape.capture():
                    pass

    def test_two_tapes_cannot_capture_concurrently(self):
        t1, t2 = BackwardTape(), BackwardTape()
        with pytest.raises(GradError, match="active"):
            with t1.capture():
                with t2.capture():
                    pass

    def test_manual_invalidate(self):
        w = Tensor(np.ones(4), requires_grad=True)
        tape = BackwardTape()
        self._wx_round(tape, w, [1.0, 2.0, 3.0, 4.0])
        assert tape.compiled
        tape.invalidate("because")
        assert not tape.compiled
        assert tape.stats.last_invalidation == "because"
        w.grad = None
        self._wx_round(tape, w, [1.0, 2.0, 3.0, 4.0])
        assert tape.stats.records == 2


class TestBitwiseCanaries:
    def test_reassociation_canary(self):
        """float32 gradient accumulation is order-sensitive: the replay
        must reproduce the interpreted order, not a reassociated one."""
        c0, c1, c2 = np.float32(1e8), np.float32(1.0), np.float32(-1e8)
        # Interpreted accumulation order into x.grad is c2, c1, c0
        # (reverse creation order): (-1e8 + 1) absorbs the 1, then +1e8
        # lands on 0.0.  The tempting reassociation (c2 + c0) + c1 = 1.0.
        assert (c2 + c1) + c0 != (c2 + c0) + c1

        def round_(tape, x):
            x.grad = None
            with tape.capture():
                loss = (x * float(c0) + x * float(c1) + x * float(c2)).sum()
            tape.backward(loss)
            return x.grad.copy()

        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        x_ref = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (x_ref * float(c0) + x_ref * float(c1) + x_ref * float(c2)).sum().backward()

        tape = BackwardTape()
        recorded = round_(tape, x)
        replayed = round_(tape, x)
        assert tape.stats.replays == 1
        np.testing.assert_array_equal(recorded, x_ref.grad)
        np.testing.assert_array_equal(replayed, x_ref.grad)
        # And the order genuinely matters on this graph:
        reassociated = (c2 + c0) + c1
        assert replayed[0] != reassociated

    def test_negative_zero_signbit(self):
        """A pre-zeroed accumulator would turn -0.0 into +0.0
        (0.0 + -0.0 == +0.0); adoption of the first contribution keeps
        the interpreted signbit."""
        def round_(tape, x):
            x.grad = None
            with tape.capture():
                loss = (x * (-0.0) + x * (-0.0)).sum()
            tape.backward(loss)
            return x.grad.copy()

        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        tape = BackwardTape()
        recorded = round_(tape, x)
        replayed = round_(tape, x)
        assert tape.stats.replays == 1
        assert np.signbit(recorded).all()
        assert np.signbit(replayed).all()


class TestGradcheckOverReplay:
    def test_replayed_tape_matches_numerical_gradient(self):
        rng = np.random.default_rng(0)
        w1 = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        w2 = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        x_data = rng.standard_normal((2, 4))

        def forward(params):
            a, b = params
            x = Tensor(x_data)
            return (silu(x @ a) @ b).sum()

        tape = BackwardTape()

        def taped_grads():
            w1.grad = None
            w2.grad = None
            with tape.capture():
                loss = forward([w1, w2])
            tape.backward(loss)
            return w1.grad.copy(), w2.grad.copy()

        g_rec = taped_grads()
        g_rep = taped_grads()
        assert tape.stats.replays == 1
        for a, b in zip(g_rec, g_rep):
            np.testing.assert_array_equal(a, b)
        for idx, (t, g) in enumerate(zip((w1, w2), g_rep)):
            num = numerical_grad(forward, [w1, w2], idx)
            np.testing.assert_allclose(g, num, rtol=1e-4, atol=1e-6,
                                       err_msg=f"param {idx}")


class TestReplayAllocations:
    def test_replay_allocates_less_than_interpreted(self, untied_config):
        """The point of the tape: intermediates live in preallocated
        buffers, so a replayed backward allocates far less than the
        interpreted sweep."""
        model = build_model(untied_config, seed=1)
        tape = BackwardTape()
        data_rng = np.random.default_rng(9)
        ids = data_rng.integers(0, untied_config.vocab_size, size=(2, 16))
        labels = np.roll(ids, -1, axis=1)

        def interpreted_backward():
            for p in model.parameters():
                p.grad = None
            loss = model.loss(ids, labels)
            tracemalloc.start()
            loss.backward()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        def replayed_backward():
            for p in model.parameters():
                p.grad = None
            with tape.capture():
                loss = model.loss(ids, labels)
            tracemalloc.start()
            tape.backward(loss)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        peak_interp = interpreted_backward()
        replayed_backward()  # record round (compiles, allocates buffers)
        peak_replay = replayed_backward()
        assert tape.stats.replays == 1
        assert peak_replay < peak_interp / 2, (
            f"replay peak {peak_replay} not well under interpreted {peak_interp}"
        )


class TestConfigAndCli:
    def test_train_config_roundtrip(self):
        from repro.train import TrainConfig

        cfg = TrainConfig(compile=True)
        assert TrainConfig.from_dict(cfg.to_dict()).compile is True
        assert TrainConfig().compile is False

    def test_cli_train_compile_flag(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "train", "-o", str(tmp_path / "run"), "--model", "tiny-untied",
            "--steps", "2", "--interval", "10", "--compile",
        ])
        assert rc == 0
        assert "completed at step 2" in capsys.readouterr().out
