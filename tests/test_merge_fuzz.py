"""Property-based fuzzing of the merge pipeline.

Hypothesis drives random slot-to-checkpoint assignments over a small
pool of partial checkpoints; for every generated plan the merged output
must verify structurally AND be slot-wise bit-identical to its sources
(weights and fp32 optimizer shards).  This is the strongest correctness
statement about LLMTailor: *any* legal recipe produces a faithful
Frankenstein checkpoint.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import LLMTailor, MergeOptions, MergeRecipe, verify_checkpoint
from repro.core.groups import groups_for_slot
from repro.io import Storage, read_blob, save_checkpoint
from repro.io.layout import CheckpointPaths
from repro.io.tensorfile import TensorFile
from repro.nn import get_config, model_slots, slot_parameter_shapes

from conftest import make_engine, train_steps

CONFIG = get_config("tiny-untied")
WORLD = 2
N_CHECKPOINTS = 3


@pytest.fixture(scope="module")
def checkpoint_pool(tmp_path_factory):
    """Three FULL checkpoints at different training states + snapshots."""
    root = tmp_path_factory.mktemp("fuzz-pool")
    model, engine = make_engine(CONFIG, world_size=WORLD)
    storage = Storage(root)
    snapshots = {}
    weight_snaps = {}
    for i in range(N_CHECKPOINTS):
        train_steps(model, engine, CONFIG, 2, seed=i)
        step = (i + 1) * 100
        save_checkpoint(storage, step=step, model=model, config=CONFIG,
                        engine=engine, trainer_state={"global_step": step})
        snapshots[step] = engine.master_state_dict()
        weight_snaps[step] = {k: v.copy() for k, v in model.state_dict().items()}
    return storage, snapshots, weight_snaps


_counter = [0]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    assignment=st.lists(
        st.integers(0, N_CHECKPOINTS - 1),
        min_size=len(model_slots(CONFIG)),
        max_size=len(model_slots(CONFIG)),
    ),
    cache_none=st.booleans(),
)
def test_random_assignments_merge_faithfully(checkpoint_pool, tmp_path, assignment, cache_none):
    storage, snapshots, weight_snaps = checkpoint_pool
    slots = model_slots(CONFIG)
    steps = [(i + 1) * 100 for i in range(N_CHECKPOINTS)]

    slot_steps = {slot: steps[assignment[j]] for j, slot in enumerate(slots)}
    base_step = slot_steps[slots[0]]
    assignments = {
        slot: storage.root / f"checkpoint-{s}"
        for slot, s in slot_steps.items()
        if s != base_step
    }
    recipe = MergeRecipe(
        base_checkpoint=storage.root / f"checkpoint-{base_step}",
        assignments=assignments,
        options=MergeOptions(
            cache_mode="none" if cache_none else "per-checkpoint", verify=False
        ),
    )
    _counter[0] += 1
    output = Path(tmp_path) / f"fuzz-{_counter[0]}"
    LLMTailor(recipe).merge(output=output)

    # 1. Structural verification passes.
    report = verify_checkpoint(output)
    assert report.ok, report.issues

    # 2. Weights: every tensor bit-equal to its assigned source snapshot.
    merged_weights = TensorFile(CheckpointPaths(output).weights)
    by_slot = slot_parameter_shapes(CONFIG)
    for slot in slots:
        src = weight_snaps[slot_steps[slot]]
        for name in by_slot[slot]:
            np.testing.assert_array_equal(
                merged_weights.read(name), src[name],
                err_msg=f"{name} from step {slot_steps[slot]}",
            )

    # 3. Optimizer: every group's fp32 shard equal to the source's.
    for rank in range(WORLD):
        merged_shard = read_blob(CheckpointPaths(output).shard(rank))
        for slot in slots:
            src_shard = read_blob(
                CheckpointPaths(storage.root / f"checkpoint-{slot_steps[slot]}").shard(rank)
            )
            for g in groups_for_slot(CONFIG, slot):
                np.testing.assert_array_equal(
                    merged_shard["fp32_flat_groups"][g],
                    src_shard["fp32_flat_groups"][g],
                    err_msg=f"rank {rank} group {g} slot {slot}",
                )
                for key in ("exp_avg", "exp_avg_sq"):
                    np.testing.assert_array_equal(
                        merged_shard["state"][g][key], src_shard["state"][g][key]
                    )
