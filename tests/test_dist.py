"""Simulated communicator, shard math, and the ZeRO-3 engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import tailored_param_groups
from repro.dist import GroupPartition, SimComm, ZeroStage3Engine, flatten_arrays, unflatten_array
from repro.nn import build_model
from repro.util.errors import CheckpointError, DistError, ShapeError

from conftest import make_engine, train_steps


class TestSimComm:
    def test_all_reduce_mean(self):
        comm = SimComm(3)
        bufs = [np.full(4, float(i)) for i in range(3)]
        np.testing.assert_allclose(comm.all_reduce_mean(bufs), np.full(4, 1.0))

    def test_reduce_scatter_slices(self):
        comm = SimComm(2)
        bufs = [np.arange(8.0), np.arange(8.0) + 2]
        shards = comm.reduce_scatter_mean(bufs)
        np.testing.assert_allclose(shards[0], np.arange(4.0) + 1)
        np.testing.assert_allclose(shards[1], np.arange(4.0, 8.0) + 1)

    def test_all_gather_concatenates(self):
        comm = SimComm(2)
        out = comm.all_gather([np.zeros(3), np.ones(3)])
        np.testing.assert_array_equal(out, [0, 0, 0, 1, 1, 1])

    def test_broadcast_copies(self):
        comm = SimComm(3)
        src = np.arange(4.0)
        out = comm.broadcast(src, root=0)
        assert len(out) == 3
        out[1][0] = 99
        assert src[0] == 0  # copies, not views

    def test_byte_accounting_ring_model(self):
        comm = SimComm(4)
        buf = np.zeros(128, dtype=np.float32)  # 512 bytes
        comm.all_reduce_mean([buf] * 4)
        assert comm.stats.bytes_by_op["all_reduce"] == pytest.approx(2 * 0.75 * 512)
        comm.reduce_scatter_mean([buf] * 4)
        assert comm.stats.bytes_by_op["reduce_scatter"] == pytest.approx(0.75 * 512)

    def test_single_rank_moves_zero_ring_bytes(self):
        comm = SimComm(1)
        comm.all_gather([np.zeros(4)])
        assert comm.stats.total_bytes() == 0.0

    def test_shape_and_count_validation(self):
        comm = SimComm(2)
        with pytest.raises(DistError):
            comm.all_reduce_mean([np.zeros(2)])
        with pytest.raises(DistError):
            comm.all_reduce_mean([np.zeros(2), np.zeros(3)])
        with pytest.raises(DistError):
            comm.reduce_scatter_mean([np.zeros(3), np.zeros(3)])  # not divisible
        with pytest.raises(DistError):
            comm.broadcast(np.zeros(1), root=5)
        with pytest.raises(DistError):
            SimComm(0)


class TestPartition:
    def test_padding_math(self):
        part = GroupPartition(numel=10, world_size=4)
        assert part.padded_numel == 12
        assert part.shard_numel == 3
        assert part.padding == 2
        assert part.bounds(3) == (9, 12)

    def test_zero_numel(self):
        part = GroupPartition(0, 4)
        assert part.padded_numel == 0 and part.shard_numel == 0

    def test_shards_gather_roundtrip(self, rng):
        part = GroupPartition(numel=13, world_size=4)
        flat = rng.standard_normal(13).astype(np.float32)
        shards = part.shards(flat)
        assert all(s.size == part.shard_numel for s in shards)
        np.testing.assert_array_equal(part.gather(shards), flat)

    def test_bad_rank_and_shapes(self):
        part = GroupPartition(10, 2)
        with pytest.raises(DistError):
            part.bounds(2)
        with pytest.raises(ShapeError):
            part.pad(np.zeros(5))
        with pytest.raises(DistError):
            part.gather([np.zeros(5)])

    @settings(max_examples=60, deadline=None)
    @given(numel=st.integers(0, 300), world=st.integers(1, 9))
    def test_property_roundtrip_any_sizes(self, numel, world):
        """gather(shards(x)) == x for every (numel, world_size)."""
        part = GroupPartition(numel, world)
        flat = np.arange(numel, dtype=np.float32)
        np.testing.assert_array_equal(part.gather(part.shards(flat)), flat)
        assert part.padded_numel % world == 0
        assert 0 <= part.padding < max(world, 1)

    def test_flatten_unflatten(self, rng):
        arrays = [rng.standard_normal(s).astype(np.float32) for s in [(2, 3), (4,), (1, 1, 2)]]
        flat = flatten_arrays(arrays)
        assert flat.shape == (12,)
        back = unflatten_array(flat, [a.shape for a in arrays])
        for a, b in zip(arrays, back):
            np.testing.assert_array_equal(a, b)

    def test_unflatten_length_checked(self):
        with pytest.raises(ShapeError):
            unflatten_array(np.zeros(5, dtype=np.float32), [(2, 2)])
        with pytest.raises(ShapeError):
            unflatten_array(np.zeros(3, dtype=np.float32), [(2, 2)])


class TestZeroEngine:
    def test_master_matches_model_at_init_up_to_bf16(self, untied_config):
        model, engine = make_engine(untied_config)
        from repro.numerics import DType, quantize

        master = engine.master_state_dict()
        for name, value in model.state_dict().items():
            np.testing.assert_array_equal(value, quantize(master[name], DType.BF16))

    def test_world_size_one_works(self, untied_config):
        model, engine = make_engine(untied_config, world_size=1)
        losses = train_steps(model, engine, untied_config, 3)
        assert losses[-1] < losses[0]

    def test_loss_decreases_multi_rank(self, untied_config):
        model, engine = make_engine(untied_config, world_size=4)
        losses = train_steps(model, engine, untied_config, 5)
        assert losses[-1] < losses[0]

    def test_world_size_invariance_of_training(self, untied_config):
        """Sharding must not change the math: ws=1 and ws=4 agree."""
        m1, e1 = make_engine(untied_config, world_size=1)
        m4, e4 = make_engine(untied_config, world_size=4)
        l1 = train_steps(m1, e1, untied_config, 3)
        l4 = train_steps(m4, e4, untied_config, 3)
        np.testing.assert_allclose(l1, l4, rtol=1e-4)
        a, b = e1.master_state_dict(), e4.master_state_dict()
        for k in a:
            np.testing.assert_allclose(a[k], b[k], atol=1e-6)

    def test_rank_state_roundtrip_bitwise(self, engine_pair, untied_config):
        model, engine = engine_pair
        train_steps(model, engine, untied_config, 2)
        before = engine.master_state_dict()
        states = [engine.rank_state_dict(r) for r in range(engine.world_size)]
        # Perturb, then restore.
        train_steps(model, engine, untied_config, 1)
        for r, st in enumerate(states):
            engine.load_rank_state_dict(r, st)
        after = engine.master_state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_partial_state_dict_filters_groups(self, engine_pair, untied_config):
        _, engine = engine_pair
        partial = engine.rank_state_dict(0, slots={"layers.0", "norm"})
        slots = {h["slot"] for h in partial["groups"]}
        assert slots == {"layers.0", "norm"}
        assert len(partial["groups"]) == 3  # norm:1 + layer:2

    def test_load_rejects_partial_by_default(self, engine_pair):
        _, engine = engine_pair
        partial = engine.rank_state_dict(0, slots={"layers.0"})
        with pytest.raises(CheckpointError, match="missing groups"):
            engine.load_rank_state_dict(0, partial)

    def test_load_validates_world_size_and_rank(self, engine_pair, untied_config):
        model, engine = engine_pair
        st = engine.rank_state_dict(0)
        _, other = make_engine(untied_config, world_size=3)
        with pytest.raises(CheckpointError):
            other.load_rank_state_dict(0, st)
        with pytest.raises(CheckpointError):
            engine.load_rank_state_dict(1, st)

    def test_load_validates_group_identity(self, engine_pair):
        _, engine = engine_pair
        st = engine.rank_state_dict(0)
        st["groups"][0]["param_names"] = ["something.else"]
        with pytest.raises(CheckpointError, match="parameter names differ"):
            engine.load_rank_state_dict(0, st)

    def test_scheduler_lr_mirrored_across_ranks(self, engine_pair, untied_config):
        model, engine = engine_pair
        engine.reference_optimizer.param_groups[0]["lr"] = 0.123
        train_steps(model, engine, untied_config, 1)
        for opt in engine.optimizers:
            assert opt.param_groups[0]["lr"] == 0.123

    def test_groups_follow_tailored_layout(self, untied_config):
        model = build_model(untied_config, seed=0)
        groups = tailored_param_groups(model, untied_config, 0.01)
        engine = ZeroStage3Engine(model, untied_config, groups, world_size=2)
        assert len(engine.group_meta) == untied_config.num_param_groups_tailored
        assert engine.group_meta[0].slot == "norm"
        assert engine.group_meta[0].weight_decay == 0.0
