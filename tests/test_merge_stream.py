"""The streaming merge engine: bitwise equality with the serial path.

The contract under test (ISSUE 2 tentpole): with ``MergeOptions(stream=
True)`` the merge consumes shards group-by-group through selective blob
reads and pipes weight tensors through a streaming writer, yet every
output byte — weights file and each rank's optimizer shard — is
identical to the serial engine at any world size, for every checkpoint
strategy's slot layout, with peak memory bounded below the serial path.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core import LLMTailor, MergeOptions, MergeRecipe, recipe_from_run
from repro.io import CheckpointPaths, Storage, save_checkpoint
from repro.io.blobfile import read_blob, read_blob_selected, write_blob
from repro.nn import model_slots
from repro.strategies import build_strategy
from repro.util.errors import CheckpointFormatError

from conftest import make_engine, train_steps

WORLD_SIZES = [1, 2, 4]
STRATEGIES = ["parity", "magnitude", "filtered", "full"]


def _build_trail(tmp_path, config, strategy_name: str, world_size: int):
    """Train briefly, saving partial checkpoints as the strategy dictates."""
    model, engine = make_engine(config, world_size=world_size)
    storage = Storage(tmp_path / f"run-{strategy_name}-ws{world_size}")
    strategy = build_strategy(strategy_name, config, interval=1)
    for step in range(1, 5):
        train_steps(model, engine, config, 1, seed=step)
        slots = strategy.plan_step(step, model=model)
        assert slots is not None  # interval=1: every step checkpoints
        save_checkpoint(
            storage, step=step, model=model, config=config, engine=engine,
            trainer_state={"global_step": step}, slots=slots,
            strategy=strategy_name,
        )
    return storage


def _merge(storage, output, **options):
    recipe = recipe_from_run(storage.root)
    recipe.options = MergeOptions(verify=False, **options)
    return LLMTailor(recipe).merge(output=output)


@pytest.mark.parametrize("world_size", WORLD_SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_stream_bitwise_equals_serial(tmp_path, untied_config, strategy, world_size):
    """Streamed output files are byte-for-byte the serial ones."""
    storage = _build_trail(tmp_path, untied_config, strategy, world_size)
    serial = _merge(storage, tmp_path / "serial")
    streamed = _merge(storage, tmp_path / "streamed", stream=True, workers=3)

    assert serial.output.weights.read_bytes() == streamed.output.weights.read_bytes()
    for rank in range(world_size):
        assert (
            serial.output.shard(rank).read_bytes()
            == streamed.output.shard(rank).read_bytes()
        ), f"rank {rank} shard differs ({strategy}, ws={world_size})"
    # Identical load accounting: the engines follow the same schedule.
    assert serial.optimizer_files_loaded == streamed.optimizer_files_loaded
    assert serial.optimizer_bytes_loaded == streamed.optimizer_bytes_loaded


@pytest.mark.parametrize("cache_mode", ["per-checkpoint", "none"])
def test_stream_interleaved_matches_serial(checkpoint_run, tmp_path, cache_mode):
    """Both cache modes agree byte-for-byte on the parity fixture."""
    storage, _, _, config, _ = checkpoint_run
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    recipe = MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-200",
        assignments={s: storage.root / "checkpoint-100" for s in odd},
        options=MergeOptions(cache_mode=cache_mode, verify=False),
    )
    serial = LLMTailor(recipe).merge(output=tmp_path / "a")
    recipe.options = MergeOptions(cache_mode=cache_mode, verify=False, stream=True)
    streamed = LLMTailor(recipe).merge(output=tmp_path / "b")
    for rank in range(2):
        assert (
            serial.output.shard(rank).read_bytes()
            == streamed.output.shard(rank).read_bytes()
        )
    assert serial.optimizer_files_loaded == streamed.optimizer_files_loaded


def _odd_parity_recipe(storage, config, **options):
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    return MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-200",
        assignments={s: storage.root / "checkpoint-100" for s in odd},
        options=MergeOptions(verify=False, **options),
    )


@pytest.mark.parametrize("stream", [False, True])
def test_corrupt_shard_bytes_rejected_by_both_engines(checkpoint_run, tmp_path, stream):
    """Bit-rot in the shard file must fail either engine.

    The serial path relies on the whole-payload blob CRC; the streaming
    path verifies each materialized group against its header ``crc32``
    and surfaces decompressor errors, so corruption in copied data can
    never flow silently into the merged checkpoint.
    """
    from repro.util.errors import MergeError

    storage, _, _, config, _ = checkpoint_run
    shard_path = CheckpointPaths(storage.root / "checkpoint-100").shard(0)
    raw = bytearray(shard_path.read_bytes())
    raw[-3] ^= 0xFF  # tail byte: inside the last group's state arrays
    shard_path.write_bytes(bytes(raw))
    recipe = _odd_parity_recipe(storage, config, stream=stream)
    with pytest.raises((CheckpointFormatError, MergeError)):
        LLMTailor(recipe).merge(output=tmp_path / "m")


def test_stream_detects_tampered_group_serial_cannot(checkpoint_run, tmp_path):
    """Per-group CRCs catch tampering that re-wrote a valid container.

    Rewriting a shard with a modified fp32 array but the original group
    header produces a self-consistent blob (payload CRC matches), which
    the serial whole-file check cannot flag — but the streaming engine's
    per-group verification does.
    """
    from repro.io import read_blob, write_blob
    from repro.util.errors import MergeError

    storage, _, _, config, _ = checkpoint_run
    shard_path = CheckpointPaths(storage.root / "checkpoint-100").shard(0)
    doc = read_blob(shard_path)
    tampered = next(iter(doc["fp32_flat_groups"]))
    doc["fp32_flat_groups"][tampered] = doc["fp32_flat_groups"][tampered] + 1.0
    write_blob(shard_path, doc)  # container CRC now valid again

    serial = LLMTailor(_odd_parity_recipe(storage, config)).merge(output=tmp_path / "s")
    assert serial is not None  # serial cannot see the stale group crc32
    with pytest.raises(MergeError, match="CRC mismatch for group"):
        LLMTailor(_odd_parity_recipe(storage, config, stream=True)).merge(
            output=tmp_path / "t"
        )


def test_streamed_output_verifies_and_resumes(checkpoint_run, tmp_path):
    """A streamed Frankenstein checkpoint passes deep verification."""
    storage, _, _, config, _ = checkpoint_run
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    recipe = MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-200",
        assignments={s: storage.root / "checkpoint-100" for s in odd},
        options=MergeOptions(stream=True, workers=2),  # verify=True default
    )
    result = LLMTailor(recipe).merge(output=tmp_path / "m")
    assert result.verify_report is not None and result.verify_report.ok


def test_stream_peak_memory_bounded(tmp_path, untied_config):
    """Streaming must allocate less at peak than full-blob caching.

    The scenario where caching hurts: slots spread round-robin over
    several *complete* checkpoints.  The serial per-checkpoint path
    materializes every distinct source shard in full; the streaming
    path only ever holds each source's *selected* groups, which across
    all sources sum to one shard.
    """
    config = untied_config
    model, engine = make_engine(config, world_size=2)
    storage = Storage(tmp_path / "full-trail")
    for step in (1, 2, 3):
        train_steps(model, engine, config, 1, seed=step)
        save_checkpoint(
            storage, step=step, model=model, config=config, engine=engine,
            trainer_state={"global_step": step}, strategy="full",
        )
    slots = model_slots(config)
    recipe = MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-3",
        assignments={
            slot: storage.root / f"checkpoint-{1 + i % 3}"
            for i, slot in enumerate(slots)
            if 1 + i % 3 != 3
        },
    )

    def peak(tag: str, **options) -> int:
        recipe.options = MergeOptions(verify=False, **options)
        tracemalloc.start()
        try:
            LLMTailor(recipe).merge(output=tmp_path / f"mem-{tag}")
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak_bytes

    serial_peak = peak("serial")
    stream_peak = peak("stream", stream=True)
    assert stream_peak < serial_peak, (
        f"streaming peak {stream_peak} should undercut serial {serial_peak}"
    )


def test_tensorfile_writer_spill_path_bitwise(tmp_path, monkeypatch):
    """Spilled (disk-backed) writes produce the same bytes as buffered."""
    from repro.io.tensorfile import TensorFile, TensorFileWriter, write_tensorfile
    from repro.numerics.dtypes import DType

    rng = np.random.default_rng(0)
    tensors = {f"t{i}": rng.standard_normal((7, 13)).astype(np.float32) for i in range(5)}
    write_tensorfile(tmp_path / "buffered.tsr", tensors, dtype=DType.BF16)
    monkeypatch.setattr(TensorFileWriter, "SPILL_THRESHOLD", 64)
    with TensorFileWriter(tmp_path / "spilled.tsr") as writer:
        for name, arr in tensors.items():
            writer.add(name, arr, DType.BF16)
    assert (tmp_path / "spilled.tsr").read_bytes() == (tmp_path / "buffered.tsr").read_bytes()
    assert not list(tmp_path.glob("*.tmp"))  # spill file cleaned up
    assert TensorFile(tmp_path / "spilled.tsr").names == list(tensors)


class TestSelectiveBlobReads:
    """Unit coverage for the selective/streaming blob reader itself."""

    @pytest.fixture
    def blob(self, tmp_path):
        obj = {
            "format_version": 1,
            "groups": [{"index": g, "name": f"g{g}", "fields": list(range(5))}
                       for g in range(6)],
            "hyperparams": [{"index": g, "lr": 0.1 * g} for g in range(6)],
            "fp32_flat_groups": {
                g: np.full(512, float(g), dtype=np.float32) for g in range(6)
            },
            "state": {
                g: {"step": g, "exp_avg": np.full(512, -float(g), dtype=np.float32)}
                for g in range(6)
            },
        }
        path = tmp_path / "shard.blob"
        write_blob(path, obj)
        return path, obj

    def test_full_predicate_equals_read_blob(self, blob):
        path, _ = blob
        a = read_blob(path)
        b = read_blob_selected(path, lambda _p: True)
        assert a["groups"] == b["groups"]
        for g in a["fp32_flat_groups"]:
            np.testing.assert_array_equal(
                a["fp32_flat_groups"][g], b["fp32_flat_groups"][g]
            )

    def test_subtree_pruning(self, blob):
        path, obj = blob
        wanted = {1, 4}
        sel = read_blob_selected(
            path,
            lambda p: not (
                len(p) == 2 and p[0] in ("fp32_flat_groups", "state")
                and p[1] not in wanted
            ),
        )
        assert sorted(sel["fp32_flat_groups"]) == [1, 4]
        assert sorted(sel["state"]) == [1, 4]
        np.testing.assert_array_equal(
            sel["fp32_flat_groups"][4], obj["fp32_flat_groups"][4]
        )
        # Untouched sections decode in full.
        assert len(sel["groups"]) == 6

    def test_indexed_list_filter(self, blob):
        path, _ = blob
        wanted = {2, 5}
        sel = read_blob_selected(
            path, lambda _p: True,
            indexed_filter=lambda p: wanted if p == ("groups",) else None,
        )
        assert [h["index"] for h in sel["groups"]] == [2, 5]
        assert sel["groups"][0]["fields"] == [0, 1, 2, 3, 4]
        assert len(sel["hyperparams"]) == 6  # unfiltered list untouched

    def test_stop_after_returns_prefix(self, blob):
        path, _ = blob
        sel = read_blob_selected(
            path, lambda _p: True, stop_after=("fp32_flat_groups", 2)
        )
        assert sorted(sel["fp32_flat_groups"]) == [0, 1, 2]
        assert "state" not in sel  # never reached

    def test_corruption_detected_without_stop(self, blob, tmp_path):
        path, _ = blob
        raw = bytearray(path.read_bytes())
        raw[-4] ^= 0xFF  # flip a byte near the payload tail
        bad = tmp_path / "bad.blob"
        bad.write_bytes(bytes(raw))
        with pytest.raises(CheckpointFormatError):
            read_blob_selected(bad, lambda _p: True)

    def test_truncation_detected(self, blob, tmp_path):
        path, _ = blob
        raw = path.read_bytes()
        cut = tmp_path / "cut.blob"
        cut.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointFormatError):
            read_blob_selected(cut, lambda _p: True)
