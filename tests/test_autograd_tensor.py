"""Gradient and semantics tests for the autograd Tensor primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, cat, check_gradients, no_grad, stack
from repro.util.errors import GradError, ShapeError


def t64(shape, rng, scale=1.0, shift=0.0):
    return Tensor(rng.standard_normal(shape) * scale + shift, requires_grad=True, dtype=np.float64)


class TestForwardSemantics:
    def test_add_matches_numpy(self, rng):
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((3, 4))
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, a + b)

    def test_scalar_coercion_both_sides(self):
        x = Tensor([1.0, 2.0])
        np.testing.assert_allclose((x + 1).data, [2.0, 3.0])
        np.testing.assert_allclose((1 + x).data, [2.0, 3.0])
        np.testing.assert_allclose((2 - x).data, [1.0, 0.0])
        np.testing.assert_allclose((2 / x).data, [2.0, 1.0])

    def test_matmul_batched(self, rng):
        a = rng.standard_normal((2, 3, 4, 5))
        b = rng.standard_normal((2, 3, 5, 6))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b, rtol=1e-6)

    def test_reshape_transpose_roundtrip(self, rng):
        a = rng.standard_normal((2, 3, 4))
        x = Tensor(a)
        np.testing.assert_array_equal(x.reshape(6, 4).data, a.reshape(6, 4))
        np.testing.assert_array_equal(x.transpose(2, 0, 1).data, a.transpose(2, 0, 1))
        np.testing.assert_array_equal(x.swapaxes(0, 2).data, a.swapaxes(0, 2))

    def test_integer_input_becomes_float(self):
        x = Tensor([1, 2, 3])
        assert x.data.dtype == np.float32

    def test_item_requires_scalar(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_repr_and_len(self):
        x = Tensor(np.zeros((3, 2)), name="w")
        assert "w" in repr(x)
        assert len(x) == 3


class TestBackwardBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(GradError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradError):
            (x * 2).backward()

    def test_explicit_grad_shape_checked(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(ShapeError):
            y.backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3).sum().backward()
        (x * 3).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_reused_node_gradient(self):
        # y = (x*x) used twice: d/dx (x^2 + x^2) = 4x
        x = Tensor([3.0], requires_grad=True)
        sq = x * x
        (sq + sq).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_no_grad_suppresses_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_detach_breaks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach() * 5
        assert not y.requires_grad


class TestGradCheckPrimitives:
    """Every primitive against central finite differences (float64)."""

    def test_add_broadcast(self, rng):
        a = t64((3, 4), rng)
        b = t64((4,), rng)
        check_gradients(lambda ts: (ts[0] + ts[1]).sum(), [a, b])

    def test_mul_broadcast(self, rng):
        a = t64((2, 3, 4), rng)
        b = t64((3, 1), rng)
        check_gradients(lambda ts: (ts[0] * ts[1]).sum(), [a, b])

    def test_sub_div(self, rng):
        a = t64((3, 3), rng)
        b = t64((3, 3), rng, shift=3.0)  # keep denominators away from 0
        check_gradients(lambda ts: (ts[0] - ts[1]).sum(), [a, b])
        check_gradients(lambda ts: (ts[0] / ts[1]).sum(), [a, b])

    def test_neg_pow(self, rng):
        a = t64((4,), rng, shift=2.0)
        check_gradients(lambda ts: (-ts[0]).sum(), [a])
        check_gradients(lambda ts: (ts[0] ** 3).sum(), [a])

    def test_matmul_2d(self, rng):
        a = t64((3, 4), rng)
        b = t64((4, 2), rng)
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_batched_broadcast(self, rng):
        a = t64((2, 3, 4), rng)
        b = t64((4, 5), rng)
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, b])

    def test_matmul_vector(self, rng):
        a = t64((3, 4), rng)
        v = t64((4,), rng)
        check_gradients(lambda ts: (ts[0] @ ts[1]).sum(), [a, v])

    def test_exp_log_sqrt_tanh_sigmoid(self, rng):
        x = t64((5,), rng, scale=0.5, shift=2.0)
        for fn in ["exp", "log", "sqrt", "tanh", "sigmoid"]:
            check_gradients(lambda ts, f=fn: getattr(ts[0], f)().sum(), [x])

    def test_abs_clip_maximum(self, rng):
        x = t64((6,), rng, shift=0.1)
        check_gradients(lambda ts: ts[0].abs().sum(), [x], eps=1e-7)
        check_gradients(lambda ts: ts[0].clip(-0.5, 0.5).sum(), [x])
        check_gradients(lambda ts: ts[0].maximum(0.0).sum(), [x])

    def test_sum_axes(self, rng):
        x = t64((3, 4, 5), rng)
        check_gradients(lambda ts: ts[0].sum(), [x])
        check_gradients(lambda ts: ts[0].sum(axis=1).sum(), [x])
        check_gradients(lambda ts: ts[0].sum(axis=(0, 2), keepdims=True).sum(), [x])

    def test_mean_var(self, rng):
        x = t64((4, 5), rng)
        check_gradients(lambda ts: ts[0].mean(), [x])
        check_gradients(lambda ts: ts[0].mean(axis=1).sum(), [x])
        check_gradients(lambda ts: ts[0].var(axis=1).sum(), [x])

    def test_reshape_transpose_grads(self, rng):
        x = t64((2, 6), rng)
        check_gradients(lambda ts: (ts[0].reshape(3, 4) * 2).sum(), [x])
        check_gradients(lambda ts: (ts[0].transpose(1, 0) ** 2).sum(), [x])

    def test_getitem_slice(self, rng):
        x = t64((4, 5), rng)
        check_gradients(lambda ts: ts[0][1:3, ::2].sum(), [x])

    def test_getitem_fancy_with_duplicates(self, rng):
        x = t64((5, 3), rng)
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda ts: ts[0][idx].sum(), [x])

    def test_cat_stack(self, rng):
        a, b = t64((2, 3), rng), t64((2, 3), rng)
        check_gradients(lambda ts: cat(ts, axis=0).sum(), [a, b])
        check_gradients(lambda ts: cat(ts, axis=1).sum(), [a, b])
        check_gradients(lambda ts: stack(ts, axis=0).sum(), [a, b])

    def test_cat_empty_rejected(self):
        with pytest.raises(ShapeError):
            cat([])
