"""Trainer integration: determinism, failure injection, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import CheckpointPaths, list_checkpoint_steps, read_latest
from repro.train import TrainConfig, Trainer
from repro.util.errors import ConfigError, TrainingError


def quick_config(tmp_path, **overrides) -> TrainConfig:
    base = dict(
        model="tiny-untied", task="cpt", total_steps=12,
        checkpoint_strategy="full", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32, log_every=4,
    )
    base.update(overrides)
    return TrainConfig(**base)


class TestConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            TrainConfig(task="pretrain")
        with pytest.raises(ConfigError):
            TrainConfig(total_steps=0)
        with pytest.raises(ConfigError):
            TrainConfig(total_steps=10, failure_step=11)

    def test_derived_quantities(self):
        cfg = TrainConfig(world_size=2, micro_batch_size=3, grad_accum_steps=4, seq_len=10)
        assert cfg.global_batch_size == 24
        assert cfg.tokens_per_step == 240

    def test_dict_roundtrip(self):
        cfg = TrainConfig(model="tiny-tied", betas=(0.8, 0.99))
        assert TrainConfig.from_dict(cfg.to_dict()) == cfg

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            TrainConfig.from_dict({"model": "tiny-tied", "gpu_count": 8})


class TestTrainingLoop:
    def test_loss_decreases(self, trained_run):
        trainer, result, _ = trained_run
        history = [e["loss"] for e in trainer.state.log_history if "loss" in e]
        assert history[-1] < history[0]
        assert result.final_step == 24

    def test_checkpoints_written_on_cadence(self, trained_run):
        _, result, out = trained_run
        assert result.checkpoints == [8, 16, 24]
        assert list_checkpoint_steps(out) == [8, 16, 24]
        assert read_latest(out).step == 24

    def test_decision_log_written(self, trained_run):
        trainer, _, out = trained_run
        assert trainer.decision_log_path.exists()

    def test_clock_accounting(self, trained_run):
        _, result, _ = trained_run
        assert result.clock["compute"] == pytest.approx(24.0)  # 1 sim-sec/step
        assert 0 < result.checkpoint_time_fraction < 0.5

    def test_eval_loss_finite(self, trained_run):
        trainer, result, _ = trained_run
        assert np.isfinite(result.final_eval_loss)

    def test_sft_task_trains(self, tmp_path):
        cfg = quick_config(tmp_path, task="sft", total_steps=6, checkpoint_interval=3, seq_len=40)
        result = Trainer(cfg).train()
        assert result.final_step == 6
        assert np.isfinite(result.final_train_loss)


class TestDeterminism:
    def test_resume_equals_uninterrupted_bitwise(self, tmp_path):
        """Train 8 straight vs train 4 + resume + 4: identical states."""
        cfg_a = quick_config(tmp_path / "a", total_steps=8, checkpoint_interval=4)
        trainer_a = Trainer(cfg_a)
        trainer_a.train()

        cfg_b = quick_config(tmp_path / "b", total_steps=8, checkpoint_interval=4)
        trainer_b = Trainer(cfg_b)
        trainer_b.train(until_step=4)
        # Fresh trainer resumes from the step-4 checkpoint.
        trainer_c = Trainer(quick_config(tmp_path / "b", total_steps=8, checkpoint_interval=4))
        trainer_c.resume_from(CheckpointPaths(trainer_c.storage.root / "checkpoint-4"))
        trainer_c.train()

        a = trainer_a.engine.master_state_dict()
        c = trainer_c.engine.master_state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], c[key], err_msg=key)

    def test_same_seed_same_run(self, tmp_path):
        r1 = Trainer(quick_config(tmp_path / "x", total_steps=5)).train()
        r2 = Trainer(quick_config(tmp_path / "y", total_steps=5)).train()
        assert r1.final_train_loss == r2.final_train_loss

    def test_different_seed_differs(self, tmp_path):
        r1 = Trainer(quick_config(tmp_path / "x", total_steps=5, seed=0)).train()
        r2 = Trainer(quick_config(tmp_path / "y", total_steps=5, seed=1)).train()
        assert r1.final_train_loss != r2.final_train_loss


class TestFailureRecovery:
    def test_failure_injection_stops_training(self, tmp_path):
        cfg = quick_config(tmp_path, total_steps=12, failure_step=9)
        result = Trainer(cfg).train()
        assert result.interrupted_at == 9
        assert result.final_step == 9

    def test_auto_recover_with_parity(self, tmp_path):
        cfg = quick_config(
            tmp_path, total_steps=16, checkpoint_strategy="parity",
            checkpoint_interval=4, failure_step=14,
        )
        trainer = Trainer(cfg)
        result = trainer.train()
        assert result.interrupted_at == 14
        merged = trainer.auto_recover(14)
        assert CheckpointPaths(merged).read_manifest()["complete"]
        assert trainer.state.global_step == 12  # last ckpt before failure
        final = trainer.train()
        assert final.final_step == 16
        assert final.interrupted_at is None

    def test_resume_latest(self, tmp_path):
        cfg = quick_config(tmp_path, total_steps=8, checkpoint_interval=4)
        trainer = Trainer(cfg)
        trainer.train()
        fresh = Trainer(cfg)
        assert fresh.resume_latest() == 8

    def test_resume_latest_without_checkpoints(self, tmp_path):
        cfg = quick_config(tmp_path, total_steps=4, checkpoint_interval=10)
        trainer = Trainer(cfg)
        with pytest.raises(TrainingError):
            trainer.resume_latest()

    def test_scheduler_state_restored(self, tmp_path):
        cfg = quick_config(tmp_path, total_steps=8, checkpoint_interval=4)
        trainer = Trainer(cfg)
        trainer.train(until_step=4)
        lr_at_4 = trainer.scheduler.get_last_lr()[0]
        fresh = Trainer(cfg)
        fresh.resume_from(CheckpointPaths(fresh.storage.root / "checkpoint-4"))
        assert fresh.scheduler.get_last_lr()[0] == lr_at_4
        assert fresh.scheduler.last_step == 4


class TestStrategyIntegration:
    @pytest.mark.parametrize("strategy", ["parity", "filtered", "magnitude"])
    def test_partial_strategies_produce_recoverable_trails(self, tmp_path, strategy):
        kwargs = {}
        if strategy == "filtered":
            kwargs = {"head_layers": 1, "tail_layers": 1, "slow_factor": 2}
        cfg = quick_config(
            tmp_path, total_steps=12, checkpoint_strategy=strategy,
            checkpoint_interval=3, strategy_kwargs=kwargs,
        )
        trainer = Trainer(cfg)
        trainer.train()
        # Every slot recoverable at the end.
        from repro.core.autorecipe import latest_slot_coverage

        coverage, _ = latest_slot_coverage(trainer.storage.root, failure_step=12)
        from repro.nn import model_slots

        assert set(coverage) == set(model_slots(trainer.model_config))
