"""Selective checkpoint strategies and the analytic planner."""

from __future__ import annotations

import pytest

from repro.nn import build_model, get_config, model_slots
from repro.strategies import (
    DecisionLog,
    FilteredStrategy,
    FullStrategy,
    ParityStrategy,
    UpdateMagnitudeStrategy,
    build_strategy,
    checkpoint_event_nbytes,
    plan_merge_cost,
    plan_strategy,
)
from repro.util.errors import ConfigError


class TestBase:
    def test_cadence(self, untied_config):
        s = FullStrategy(untied_config, interval=10)
        fired = [step for step in range(1, 41) if s.plan_step(step) is not None]
        assert fired == [10, 20, 30, 40]

    def test_decision_log_records(self, untied_config, tmp_path):
        s = ParityStrategy(untied_config, interval=5)
        for step in range(1, 16):
            s.plan_step(step)
        assert [r["step"] for r in s.log.records] == [5, 10, 15]
        path = tmp_path / "log.json"
        s.log.save(path)
        loaded = DecisionLog.load(path)
        assert loaded.strategy == "parity"
        assert loaded.records == s.log.records

    def test_coverage_tracking(self, untied_config):
        s = ParityStrategy(untied_config, interval=5)
        for step in range(1, 16):
            s.plan_step(step)
        coverage = s.log.slots_saved_before(15)
        assert set(coverage) == set(model_slots(untied_config))

    def test_registry(self, untied_config):
        s = build_strategy("filtered", untied_config, 10, head_layers=1, tail_layers=1)
        assert isinstance(s, FilteredStrategy)
        with pytest.raises(ConfigError):
            build_strategy("psychic", untied_config, 10)

    def test_interval_validated(self, untied_config):
        with pytest.raises(ConfigError):
            FullStrategy(untied_config, interval=0)

    def test_reset(self, untied_config):
        s = ParityStrategy(untied_config, interval=1)
        s.plan_step(1)
        s.reset()
        assert s.log.records == []
        assert s.plan_step(1) == model_slots(untied_config)  # initial full again


class TestParity:
    def test_alternation_after_initial_full(self, untied_config):
        s = ParityStrategy(untied_config, interval=1)
        first = s.plan_step(1)
        second = s.plan_step(2)
        third = s.plan_step(3)
        assert first == model_slots(untied_config)
        assert set(second) == set(s.odd_set())
        assert set(third) == set(s.even_set())

    def test_odd_even_partition_the_model(self, tiny_config):
        s = ParityStrategy(tiny_config, interval=1)
        union = set(s.odd_set()) | set(s.even_set())
        assert union == set(model_slots(tiny_config))
        assert not set(s.odd_set()) & set(s.even_set())

    def test_embed_with_odd_lmhead_with_even(self, untied_config):
        s = ParityStrategy(untied_config, interval=1)
        assert "embed_tokens" in s.odd_set()
        assert "lm_head" in s.even_set()
        assert "norm" in s.even_set()

    def test_tied_model_has_no_lm_head_anywhere(self, tied_config):
        s = ParityStrategy(tied_config, interval=1)
        assert "lm_head" not in s.odd_set() + s.even_set()

    def test_without_initial_full_halves_only(self, untied_config):
        s = ParityStrategy(untied_config, interval=1, initial_full=False)
        assert set(s.plan_step(1)) == set(s.odd_set())

    def test_two_consecutive_checkpoints_cover_everything(self, untied_config):
        """The property the merge relies on (use case 1)."""
        s = ParityStrategy(untied_config, interval=1, initial_full=False)
        a = s.plan_step(1)
        b = s.plan_step(2)
        assert set(a) | set(b) == set(model_slots(untied_config))


class TestFiltered:
    def test_boundary_every_event(self):
        cfg = get_config("llama3.1-8b-sim")  # 32 layers
        s = FilteredStrategy(cfg, interval=1, initial_full=False)
        for step in range(1, 11):
            slots = s.plan_step(step)
            for b in ["layers.0", "layers.1", "layers.30", "layers.31"]:
                assert b in slots, f"boundary {b} missing at step {step}"

    def test_slow_slots_every_fifth_event(self):
        cfg = get_config("llama3.1-8b-sim")
        s = FilteredStrategy(cfg, interval=1, initial_full=False, slow_factor=5)
        sizes = [len(s.plan_step(step)) for step in range(1, 11)]
        # Events 1 and 6 (phases 0 and 5) carry the slow set.
        assert sizes[0] > sizes[1]
        assert sizes[5] > sizes[4]
        assert sizes[1] == 4  # boundary only

    def test_alternating_halves_cover_middle(self):
        cfg = get_config("llama3.1-8b-sim")
        s = FilteredStrategy(cfg, interval=1, initial_full=False, slow_factor=1)
        seen = set()
        for step in range(1, 3):
            seen.update(s.plan_step(step))
        assert seen == set(model_slots(cfg))

    def test_head_tail_bounds_validated(self, untied_config):
        with pytest.raises(ConfigError):
            FilteredStrategy(untied_config, 1, head_layers=3, tail_layers=3)  # L=4
        with pytest.raises(ConfigError):
            FilteredStrategy(untied_config, 1, slow_factor=0)

    def test_describe_fields(self, untied_config):
        d = FilteredStrategy(untied_config, 7).describe()
        assert d["strategy"] == "filtered" and d["slow_factor"] == 5


class TestMagnitude:
    def test_degrades_to_full_without_model(self, untied_config):
        s = UpdateMagnitudeStrategy(untied_config, interval=1)
        assert s.plan_step(1) == model_slots(untied_config)

    def test_first_event_saves_everything(self, untied_config):
        model = build_model(untied_config, seed=0)
        s = UpdateMagnitudeStrategy(untied_config, interval=1)
        assert set(s.plan_step(1, model=model)) == set(model_slots(untied_config))

    def test_unchanged_model_saves_little_then_staleness_forces(self, untied_config):
        model = build_model(untied_config, seed=0)
        s = UpdateMagnitudeStrategy(
            untied_config, interval=1, threshold=0.5, min_slots=1, max_staleness=3
        )
        s.plan_step(1, model=model)  # reference snapshot
        small = s.plan_step(2, model=model)
        assert len(small) <= 1  # nothing drifted; only the min_slots floor
        s.plan_step(3, model=model)
        s.plan_step(4, model=model)
        forced = s.plan_step(5, model=model)
        # Staleness floor forces everything except the slot the min_slots
        # floor kept refreshing in between.
        assert len(forced) >= len(model_slots(untied_config)) - 1

    def test_detects_drifted_slot(self, untied_config):
        model = build_model(untied_config, seed=0)
        s = UpdateMagnitudeStrategy(untied_config, interval=1, threshold=0.01, max_staleness=99)
        s.plan_step(1, model=model)
        # Drift exactly one layer's weights.
        model.model.layers[2].mlp.up_proj.weight.data += 1.0
        chosen = s.plan_step(2, model=model)
        assert "layers.2" in chosen
        assert "layers.1" not in chosen

    def test_params_validated(self, untied_config):
        with pytest.raises(ConfigError):
            UpdateMagnitudeStrategy(untied_config, 1, threshold=-1)
        with pytest.raises(ConfigError):
            UpdateMagnitudeStrategy(untied_config, 1, max_staleness=0)


class TestPlanner:
    def test_event_bytes_full_is_14_per_param(self, untied_config):
        vol = checkpoint_event_nbytes(untied_config, model_slots(untied_config))
        assert vol["total_bytes"] == vol["params"] * 14

    def test_parity_halves_total_bytes(self):
        """Paper Table 3: parity cuts total checkpoint volume ~2x."""
        cfg = get_config("llama3.1-8b")
        full = plan_strategy(cfg, FullStrategy(cfg, 100), total_steps=1600)
        parity = plan_strategy(
            cfg, ParityStrategy(cfg, 100, initial_full=False), total_steps=1600
        )
        ratio = full.total_bytes / parity.total_bytes
        assert abs(ratio - 2.0) < 0.1

    def test_filtered_gives_paper_scale_reduction(self):
        """Paper Table 6: ~4.3x size reduction for Llama-3.1-8B."""
        cfg = get_config("llama3.1-8b")
        full = plan_strategy(cfg, FullStrategy(cfg, 100), total_steps=1600)
        filt = plan_strategy(
            cfg, FilteredStrategy(cfg, 100, initial_full=False), total_steps=1600
        )
        ratio = full.total_bytes / filt.total_bytes
        assert 3.0 < ratio < 6.0

    def test_paper_total_size_llama(self):
        """Paper Tables 3/7: 16 full ckpts of ~112.47 GB -> ~1799.52 GB."""
        cfg = get_config("llama3.1-8b")
        plan = plan_strategy(cfg, FullStrategy(cfg, 100), total_steps=1600)
        assert plan.num_events == 16
        total_gb = plan.total_bytes / 1e9
        assert abs(total_gb - 1799.52) < 30

    def test_checkpoint_fraction_decreases_with_parity(self):
        cfg = get_config("qwen2.5-7b")
        full = plan_strategy(cfg, FullStrategy(cfg, 50), total_steps=850,
                             tokens_per_step_per_gpu=8192)
        parity = plan_strategy(cfg, ParityStrategy(cfg, 50, initial_full=False),
                               total_steps=850, tokens_per_step_per_gpu=8192)
        assert parity.checkpoint_time_fraction < full.checkpoint_time_fraction
        assert full.checkpoint_time_fraction > 0.1  # Qwen SFT is ckpt-heavy

    def test_events_carry_slots_and_bytes(self, untied_config):
        plan = plan_strategy(untied_config, ParityStrategy(untied_config, 2), total_steps=6)
        assert plan.num_events == 3
        for e in plan.events:
            assert e["total_bytes"] == e["weight_bytes"] + e["optim_bytes"]
            assert e["num_slots"] == len(e["slots"])


class TestMergeCostPlan:
    """The analytic merge estimator mirrors the real engine's knobs."""

    def test_interleaved_loads_per_slot(self):
        config = get_config("llama3.1-8b")
        cached = plan_merge_cost(config, num_checkpoints=2)
        interleaved = plan_merge_cost(config, num_checkpoints=2, cache_mode="none")
        assert cached.loads_per_rank == 2
        assert interleaved.loads_per_rank == config.num_model_slots
        assert interleaved.bytes_loaded > cached.bytes_loaded
        assert interleaved.seconds > cached.seconds

    def test_stream_cuts_decode_not_io(self):
        config = get_config("llama3.1-8b")
        serial = plan_merge_cost(config, num_checkpoints=2, cache_mode="none")
        stream = plan_merge_cost(config, num_checkpoints=2, cache_mode="none", stream=True)
        assert stream.bytes_loaded == serial.bytes_loaded  # same schedule
        assert stream.bytes_decoded < serial.bytes_decoded
        assert stream.seconds < serial.seconds

    def test_workers_divide_rank_waves(self):
        config = get_config("llama3.1-8b")
        one = plan_merge_cost(config, world_size=8, num_checkpoints=2, workers=1)
        four = plan_merge_cost(config, world_size=8, num_checkpoints=2, workers=4)
        eight = plan_merge_cost(config, world_size=8, num_checkpoints=2, workers=8)
        assert one.seconds > four.seconds > eight.seconds

    def test_describe_round_trips(self):
        config = get_config("llama3.1-8b")
        plan = plan_merge_cost(config, stream=True, workers=2)
        doc = plan.describe()
        assert doc["model"] == config.name
        assert doc["stream"] is True and doc["workers"] == 2
