"""Tests for RNG streams, humanize, timers, tables, JSON I/O, logging."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.util import (
    RngTree,
    SimClock,
    Table,
    WallTimer,
    derive_seed,
    format_bytes,
    format_duration,
    format_gib,
    format_pct,
    format_ratio,
    read_json,
    render_kv,
    stream,
    write_json_atomic,
)
from repro.util.errors import CheckpointError
from repro.util.humanize import parse_bytes
from repro.util.logging import get_logger, rank_logger


class TestRng:
    def test_same_key_same_stream(self):
        a = stream(42, "data", 3).random(5)
        b = stream(42, "data", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = stream(42, "data", 3).random(5)
        b = stream(42, "data", 4).random(5)
        assert not np.array_equal(a, b)

    def test_derive_seed_stable_and_64bit(self):
        s = derive_seed(1, "a", 2, "b")
        assert s == derive_seed(1, "a", 2, "b")
        assert 0 <= s < 2**64

    def test_tree_children_independent_of_draw_order(self):
        tree = RngTree(7)
        c1 = tree.child("x").generator("y")
        _ = tree.child("other").generator("z").random(100)
        c2 = tree.child("x").generator("y")
        np.testing.assert_array_equal(c1.random(3), c2.random(3))

    def test_spawn_count_and_independence(self):
        gens = list(RngTree(1).spawn(4, "ranks"))
        assert len(gens) == 4
        draws = [g.random(8) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_state_key_format(self):
        assert RngTree(5, "a", 1).state_key() == "5:a/1"


class TestHumanize:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, "0 B"), (1023, "1023 B"), (1536, "1.50 KiB"), (1024**3, "1.00 GiB"), (-2048, "-2.00 KiB")],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    def test_format_gib(self):
        assert format_gib(1024**3) == "1.00"

    @pytest.mark.parametrize(
        "s,expected",
        [(0.5e-3, "500.0us"), (0.5, "500.0ms"), (5.0, "5.0s"), (95.3, "1m 35.3s"), (3700, "1h 1m 40s")],
    )
    def test_format_duration(self, s, expected):
        assert format_duration(s) == expected

    def test_format_ratio_and_pct(self):
        assert format_ratio(4.3, 1.0) == "4.30x"
        assert format_ratio(1.0, 0.0) == "inf"
        assert format_pct(0.0499) == "4.99"

    @pytest.mark.parametrize(
        "text,expected",
        [("2048", 2048), ("1.5 GiB", int(1.5 * 1024**3)), ("350 GB", 350 * 10**9), ("2 kib", 2048)],
    )
    def test_parse_bytes(self, text, expected):
        assert parse_bytes(text) == expected

    def test_parse_bytes_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_bytes("lots of bytes")


class TestClocks:
    def test_wall_timer_accumulates(self):
        t = WallTimer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_wall_timer_stop_without_start(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_simclock_categories_and_fraction(self):
        c = SimClock()
        c.advance(80, "compute")
        c.advance(15, "checkpoint_write.weights")
        c.advance(5, "checkpoint_write.optimizer")
        assert c.total() == 100
        assert c.category_total("checkpoint_write") == 20
        assert c.fraction("checkpoint_write") == pytest.approx(0.20)
        snap = c.snapshot()
        assert snap["__total__"] == 100

    def test_simclock_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1, "x")

    def test_simclock_zero_total_fraction(self):
        assert SimClock().fraction("anything") == 0.0


class TestTables:
    def test_render_contains_cells(self):
        t = Table(["Model", "Size"], title="T")
        t.add_row(["llama", 112.47])
        out = t.render()
        assert "llama" in out and "112.47" in out and out.startswith("T")

    def test_row_width_validated(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_highlight_best_max(self):
        t = Table(["m", "acc"])
        t.add_row(["a", 60.0]).add_row(["b", 75.0])
        t.highlight_best(1, best=max)
        assert "75.00 *" in t.render()

    def test_markdown_mode(self):
        t = Table(["a"], title="x")
        t.add_row([1])
        md = t.render_markdown()
        assert "| a |" in md and "|---|" in md

    def test_render_kv(self):
        out = render_kv("cfg", {"steps": 100, "lr": 0.001})
        assert "steps" in out and "100" in out


class TestJsonIO:
    def test_roundtrip_with_numpy(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_atomic(path, {"a": np.int64(3), "b": np.float32(1.5), "c": np.arange(3)})
        assert read_json(path) == {"a": 3, "b": 1.5, "c": [0, 1, 2]}

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_json(tmp_path / "nope.json")

    def test_corrupt_json_raises(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(CheckpointError):
            read_json(p)

    def test_atomic_no_tmp_left_behind(self, tmp_path):
        write_json_atomic(tmp_path / "y.json", {"k": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert not leftovers

    def test_creates_parent_dirs(self, tmp_path):
        write_json_atomic(tmp_path / "deep" / "dir" / "z.json", [1, 2])
        assert json.loads((tmp_path / "deep" / "dir" / "z.json").read_text()) == [1, 2]


class TestLogging:
    def test_namespaced_logger(self):
        assert get_logger("io.storage").name == "repro.io.storage"
        assert get_logger("repro.x").name == "repro.x"

    def test_rank_logger_prefixes(self):
        adapter = rank_logger("dist", 3)
        msg, _ = adapter.process("hello", {})
        assert msg == "[rank 3] hello"
