"""Merge recipes (YAML schema) and plan resolution against disk."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import (
    MergeOptions,
    MergeRecipe,
    load_recipe,
    parse_recipe,
    resolve_plan,
)
from repro.util.errors import MergeError, RecipeError


class TestParseRecipe:
    def _minimal(self):
        return {"base_checkpoint": "runs/x/checkpoint-200"}

    def test_minimal_recipe(self):
        recipe = parse_recipe(self._minimal())
        assert recipe.base_checkpoint == Path("runs/x/checkpoint-200")
        assert recipe.assignments == {}
        assert recipe.options.workers == 1

    def test_slices_with_ranges(self):
        doc = self._minimal() | {
            "slices": [
                {"slot": "layers.0-2", "source": "A"},
                {"slot": "layers.5", "source": "B"},
            ]
        }
        recipe = parse_recipe(doc)
        assert recipe.assignments == {
            "layers.0": Path("A"),
            "layers.1": Path("A"),
            "layers.2": Path("A"),
            "layers.5": Path("B"),
        }

    def test_aux_assignments(self):
        doc = self._minimal() | {"aux": {"embed_tokens": "A", "lm_head": "B"}}
        recipe = parse_recipe(doc)
        assert recipe.assignments["embed_tokens"] == Path("A")
        assert recipe.source_for("norm") == recipe.base_checkpoint

    def test_options_parsed(self):
        doc = self._minimal() | {
            "options": {"workers": 4, "cache_mode": "none", "verify": False}
        }
        recipe = parse_recipe(doc)
        assert recipe.options == MergeOptions(workers=4, cache_mode="none", verify=False)

    @pytest.mark.parametrize(
        "mutation",
        [
            {"base_checkpoint": None},
            {"extra_key": 1},
            {"slices": "not-a-list"},
            {"slices": [{"source": "A"}]},
            {"slices": [{"slot": "layers.0", "source": "A", "bogus": 1}]},
            {"slices": [{"slot": "decoder.0", "source": "A"}]},
            {"slices": [{"slot": "layers.5-2", "source": "A"}]},
            {"slices": [{"slot": "layers.0", "source": None}]},
            {"aux": {"bias": "A"}},
            {"options": {"workers": 0}},
            {"options": {"cache_mode": "sometimes"}},
            {"options": {"turbo": True}},
        ],
    )
    def test_invalid_documents_rejected(self, mutation):
        doc = self._minimal()
        doc.update(mutation)
        if mutation.get("base_checkpoint", "x") is None:
            doc.pop("base_checkpoint")
        with pytest.raises(RecipeError):
            parse_recipe(doc)

    def test_duplicate_slot_rejected(self):
        doc = self._minimal() | {
            "slices": [
                {"slot": "layers.0-1", "source": "A"},
                {"slot": "layers.1", "source": "B"},
            ]
        }
        with pytest.raises(RecipeError, match="more than once"):
            parse_recipe(doc)

    def test_non_mapping_rejected(self):
        with pytest.raises(RecipeError):
            parse_recipe(["not", "a", "mapping"])

    def test_yaml_roundtrip(self, tmp_path):
        recipe = MergeRecipe(
            base_checkpoint=Path("runs/checkpoint-200"),
            assignments={"layers.0": Path("runs/checkpoint-100"), "embed_tokens": Path("runs/checkpoint-100")},
            options=MergeOptions(workers=2, cache_mode="none"),
        )
        path = tmp_path / "recipe.yaml"
        recipe.save(path)
        loaded = load_recipe(path)
        assert loaded.base_checkpoint == recipe.base_checkpoint
        assert loaded.assignments == recipe.assignments
        assert loaded.options.cache_mode == "none"

    def test_missing_recipe_file(self, tmp_path):
        with pytest.raises(RecipeError, match="not found"):
            load_recipe(tmp_path / "none.yaml")

    def test_distinct_sources_stable_order(self):
        recipe = parse_recipe(
            self._minimal()
            | {"slices": [{"slot": "layers.0", "source": "B"}, {"slot": "layers.1", "source": "A"}]}
        )
        assert recipe.distinct_sources() == [
            Path("runs/x/checkpoint-200"), Path("B"), Path("A")
        ]


class TestResolvePlan:
    def test_resolves_against_real_run(self, checkpoint_run, tmp_path):
        storage, *_ = checkpoint_run
        recipe = parse_recipe({"base_checkpoint": str(storage.root / "checkpoint-200")})
        # base is partial (even layers); odd slots must be reassigned.
        with pytest.raises(MergeError, match="does not contain slot"):
            resolve_plan(recipe, output=tmp_path / "out")

    def test_full_assignment_resolves(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        odd = {f"layers.{i}": str(storage.root / "checkpoint-100")
               for i in range(config.num_hidden_layers) if i % 2 == 1}
        doc = {
            "base_checkpoint": str(storage.root / "checkpoint-200"),
            "slices": [{"slot": s, "source": p} for s, p in odd.items()],
            "aux": {"embed_tokens": str(storage.root / "checkpoint-100")},
        }
        plan = resolve_plan(parse_recipe(doc), output=tmp_path / "out")
        assert plan.world_size == 2
        assert plan.num_groups == config.num_param_groups_tailored
        assert plan.group_source(0).step == 200  # norm from base
        assert len(plan.distinct_sources()) == 2

    def test_missing_base_rejected(self, tmp_path):
        recipe = parse_recipe({"base_checkpoint": str(tmp_path / "nope")})
        with pytest.raises(MergeError, match="base checkpoint not found"):
            resolve_plan(recipe, output=tmp_path / "out")

    def test_output_equal_to_base_rejected(self, checkpoint_run):
        storage, *_ = checkpoint_run
        base = storage.root / "checkpoint-200"
        recipe = parse_recipe({"base_checkpoint": str(base)})
        with pytest.raises(MergeError, match="must differ"):
            resolve_plan(recipe, output=base)

    def test_no_output_anywhere_rejected(self, checkpoint_run):
        storage, *_ = checkpoint_run
        recipe = parse_recipe({"base_checkpoint": str(storage.root / "checkpoint-200")})
        with pytest.raises(RecipeError, match="no output"):
            resolve_plan(recipe)

    def test_unknown_slot_for_tied_model_rejected(self, tmp_path):
        from conftest import make_engine
        from repro.io import Storage, save_checkpoint
        from repro.nn import get_config

        config = get_config("tiny-tied")
        model, engine = make_engine(config)
        storage = Storage(tmp_path / "tied")
        save_checkpoint(storage, step=10, model=model, config=config, engine=engine, trainer_state={})
        doc = {
            "base_checkpoint": str(storage.root / "checkpoint-10"),
            "aux": {"lm_head": str(storage.root / "checkpoint-10")},
        }
        with pytest.raises(MergeError, match="tied"):
            resolve_plan(parse_recipe(doc), output=tmp_path / "out")

    def test_worker_spec_is_serializable(self, checkpoint_run, tmp_path):
        import pickle

        storage, _, _, config, _ = checkpoint_run
        odd = {f"layers.{i}": str(storage.root / "checkpoint-100")
               for i in range(config.num_hidden_layers) if i % 2 == 1}
        odd["embed_tokens"] = str(storage.root / "checkpoint-100")
        doc = {
            "base_checkpoint": str(storage.root / "checkpoint-200"),
            "slices": [{"slot": s, "source": p} for s, p in odd.items() if s.startswith("layers")],
            "aux": {"embed_tokens": odd["embed_tokens"]},
        }
        plan = resolve_plan(parse_recipe(doc), output=tmp_path / "out")
        spec = plan.to_worker_spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
