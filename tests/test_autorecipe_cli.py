"""Auto-recipe generation and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import LLMTailor, recipe_from_decision_log, recipe_from_run
from repro.core.autorecipe import latest_slot_coverage
from repro.io import CheckpointPaths
from repro.train import TrainConfig, Trainer
from repro.util.errors import MergeError
from repro.util.jsonio import write_json_atomic


@pytest.fixture
def parity_trail(tmp_path):
    """A parity run interrupted at step 14 (checkpoints at 4, 8, 12)."""
    cfg = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=16,
        checkpoint_strategy="parity", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        failure_step=14,
    )
    trainer = Trainer(cfg)
    trainer.train()
    return trainer


class TestAutoRecipe:
    def test_coverage_prefers_latest(self, parity_trail):
        coverage, config = latest_slot_coverage(parity_trail.storage.root, failure_step=14)
        # Checkpoint 4 = full, 8 = odd set, 12 = even set.
        assert coverage["layers.0"] == 12  # even layer: latest at 12
        assert coverage["layers.1"] == 8  # odd layer: latest at 8
        assert coverage["norm"] == 12

    def test_failure_step_filters(self, parity_trail):
        coverage, _ = latest_slot_coverage(parity_trail.storage.root, failure_step=9)
        assert max(coverage.values()) == 8

    def test_no_checkpoints_raises(self, tmp_path):
        with pytest.raises(MergeError, match="no usable checkpoints"):
            latest_slot_coverage(tmp_path, failure_step=10)

    def test_recipe_from_run_merges(self, parity_trail, tmp_path):
        recipe = recipe_from_run(parity_trail.storage.root, failure_step=14)
        assert recipe.base_checkpoint.name == "checkpoint-12"
        result = LLMTailor(recipe).merge(output=tmp_path / "merged")
        assert result.output.read_manifest()["complete"]

    def test_recipe_from_decision_log(self, parity_trail, tmp_path):
        recipe = recipe_from_decision_log(
            parity_trail.decision_log_path, parity_trail.storage.root, failure_step=14
        )
        assert recipe.base_checkpoint.name == "checkpoint-12"
        # Odd layers must come from checkpoint-8.
        assert recipe.assignments["layers.1"].name == "checkpoint-8"

    def test_decision_log_ignores_pruned_checkpoints(self, parity_trail, tmp_path):
        import shutil

        shutil.rmtree(parity_trail.storage.root / "checkpoint-8")
        recipe = recipe_from_decision_log(
            parity_trail.decision_log_path, parity_trail.storage.root, failure_step=14
        )
        # Fallback: odd layers last seen in the full checkpoint-4.
        assert recipe.assignments["layers.1"].name == "checkpoint-4"

    def test_empty_decision_log_raises(self, tmp_path):
        path = tmp_path / "log.json"
        write_json_atomic(path, {"strategy": "parity", "records": []})
        with pytest.raises(MergeError, match="no records"):
            recipe_from_decision_log(path, tmp_path)


class TestCLI:
    def test_groups_command(self, capsys):
        assert main(["groups", "llama3.1-8b"]) == 0
        out = capsys.readouterr().out
        assert "2L+x = 67" in out
        assert "layer_0_nodecay" in out

    def test_plan_command(self, capsys):
        assert main(["plan", "llama3.1-8b", "parity", "--interval", "100", "--steps", "400"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint events" in out and "proportion" in out

    def test_describe_and_verify(self, parity_trail, capsys):
        ckpt = str(parity_trail.storage.root / "checkpoint-4")
        assert main(["describe", ckpt]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["step"] == 4
        assert main(["verify", ckpt]) == 0

    def test_auto_merge_command(self, parity_trail, tmp_path, capsys):
        out_dir = str(tmp_path / "cli-merged")
        rc = main([
            "auto-merge", str(parity_trail.storage.root),
            "--failure-step", "14", "-o", out_dir,
        ])
        assert rc == 0
        assert "merged checkpoint" in capsys.readouterr().out
        assert CheckpointPaths(out_dir).read_manifest()["complete"]

    def test_merge_command_from_yaml(self, parity_trail, tmp_path, capsys):
        recipe = recipe_from_run(parity_trail.storage.root, failure_step=14)
        recipe_path = tmp_path / "recipe.yaml"
        recipe.save(recipe_path)
        rc = main(["merge", "-r", str(recipe_path), "-o", str(tmp_path / "m")])
        assert rc == 0

    def test_merge_command_stream_flags_match_serial(self, parity_trail, tmp_path, capsys):
        """`merge --stream --workers` emits the identical checkpoint."""
        recipe = recipe_from_run(parity_trail.storage.root, failure_step=14)
        recipe_path = tmp_path / "recipe.yaml"
        recipe.save(recipe_path)
        assert main(["merge", "-r", str(recipe_path), "-o", str(tmp_path / "s")]) == 0
        assert main([
            "merge", "-r", str(recipe_path), "-o", str(tmp_path / "t"),
            "--stream", "--workers", "4", "--cache-mode", "per-checkpoint",
        ]) == 0
        serial, streamed = CheckpointPaths(tmp_path / "s"), CheckpointPaths(tmp_path / "t")
        assert serial.weights.read_bytes() == streamed.weights.read_bytes()
        for rank in range(2):
            assert serial.shard(rank).read_bytes() == streamed.shard(rank).read_bytes()

    def test_auto_merge_stream_flag(self, parity_trail, tmp_path, capsys):
        out_dir = str(tmp_path / "cli-streamed")
        rc = main([
            "auto-merge", str(parity_trail.storage.root),
            "--failure-step", "14", "-o", out_dir, "--stream", "--workers", "2",
        ])
        assert rc == 0
        assert CheckpointPaths(out_dir).read_manifest()["complete"]

    def test_plan_merge_estimate(self, capsys):
        rc = main([
            "plan", "llama3.1-8b", "parity", "--interval", "100", "--steps", "400",
            "--merge-checkpoints", "2", "--stream", "--workers", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "merge estimate" in out and "bytes decoded" in out

    def test_verify_reports_issues_nonzero(self, parity_trail, tmp_path, capsys):
        # A partial checkpoint fails completeness verification.
        rc = main(["verify", str(parity_trail.storage.root / "checkpoint-8")])
        assert rc == 1
        assert "ISSUE" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
