"""Extensions beyond the paper prototype: diffstat, async planner,
generation, and the extended CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.diffstat import diff_checkpoints, drift_ranking, nonuniformity_index
from repro.data import MedicalKB, WordTokenizer, pubmed_like_corpus
from repro.evalbench import generate, generate_text, greedy_continuations
from repro.io import Storage, save_checkpoint
from repro.nn import build_model, get_config
from repro.strategies import (
    FullStrategy,
    ParityStrategy,
    plan_strategy,
    plan_strategy_async,
)
from repro.util.errors import ConfigError, MergeError

from conftest import make_engine, train_steps


@pytest.fixture
def two_full_checkpoints(tmp_path, untied_config):
    model, engine = make_engine(untied_config)
    storage = Storage(tmp_path / "run")
    train_steps(model, engine, untied_config, 1)
    save_checkpoint(storage, step=100, model=model, config=untied_config,
                    engine=engine, trainer_state={"global_step": 100})
    train_steps(model, engine, untied_config, 4)
    save_checkpoint(storage, step=200, model=model, config=untied_config,
                    engine=engine, trainer_state={"global_step": 200})
    return storage


class TestDiffStat:
    def test_self_diff_is_zero(self, two_full_checkpoints):
        root = two_full_checkpoints.root
        drifts = diff_checkpoints(root / "checkpoint-100", root / "checkpoint-100")
        assert all(d.weight_l2 == 0.0 for d in drifts)
        assert all(d.weight_max == 0.0 for d in drifts)

    def test_training_produces_nonzero_drift(self, two_full_checkpoints):
        root = two_full_checkpoints.root
        drifts = diff_checkpoints(root / "checkpoint-100", root / "checkpoint-200")
        assert all(d.weight_l2 > 0.0 for d in drifts)
        assert len(drifts) == get_config("tiny-untied").num_model_slots

    def test_momentum_drift_available(self, two_full_checkpoints):
        root = two_full_checkpoints.root
        drifts = diff_checkpoints(
            root / "checkpoint-100", root / "checkpoint-200", include_momentum=True
        )
        assert any(d.momentum_l2 > 0.0 for d in drifts)

    def test_ranking_descending(self, two_full_checkpoints):
        root = two_full_checkpoints.root
        ranked = drift_ranking(
            diff_checkpoints(root / "checkpoint-100", root / "checkpoint-200")
        )
        values = [d.weight_l2 for d in ranked]
        assert values == sorted(values, reverse=True)

    def test_nonuniformity_index_of_training(self, two_full_checkpoints):
        root = two_full_checkpoints.root
        drifts = diff_checkpoints(root / "checkpoint-100", root / "checkpoint-200")
        idx = nonuniformity_index(drifts)
        assert idx >= 1.0  # max/median by construction

    def test_missing_checkpoint_rejected(self, tmp_path):
        with pytest.raises(MergeError):
            diff_checkpoints(tmp_path / "a", tmp_path / "b")

    def test_cli_diff(self, two_full_checkpoints, capsys):
        root = two_full_checkpoints.root
        rc = main(["diff", str(root / "checkpoint-100"), str(root / "checkpoint-200")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "non-uniformity index" in out and "layers.0" in out


class TestAsyncPlanner:
    def test_async_stall_below_sync_blocking(self):
        cfg = get_config("llama3.1-8b")
        sync = plan_strategy(cfg, FullStrategy(cfg, 100), total_steps=1000)
        async_plan = plan_strategy_async(cfg, FullStrategy(cfg, 100), total_steps=1000)
        assert async_plan.checkpoint_seconds < sync.checkpoint_seconds
        assert async_plan.checkpoint_time_fraction < sync.checkpoint_time_fraction

    def test_composability_multiplies_savings(self):
        """Async + parity beats either alone (the paper's §5.1 claim)."""
        cfg = get_config("qwen2.5-7b")
        full_sync = plan_strategy(cfg, FullStrategy(cfg, 50), total_steps=500,
                                  tokens_per_step_per_gpu=8192)
        parity_sync = plan_strategy(
            cfg, ParityStrategy(cfg, 50, initial_full=False), total_steps=500,
            tokens_per_step_per_gpu=8192,
        )
        parity_async = plan_strategy_async(
            cfg, ParityStrategy(cfg, 50, initial_full=False), total_steps=500,
            tokens_per_step_per_gpu=8192,
        )
        assert (
            parity_async.checkpoint_time_fraction
            < parity_sync.checkpoint_time_fraction
            < full_sync.checkpoint_time_fraction
        )

    def test_backlog_stalls_when_interval_too_short(self):
        """A slow writer + tight interval must surface flush stalls."""
        from repro.io.storage import StorageCostModel

        cfg = get_config("llama3.1-8b")
        slow = StorageCostModel(write_bandwidth=2e8)  # 200 MB/s: ~9 min/ckpt
        plan = plan_strategy_async(
            cfg, FullStrategy(cfg, 10), total_steps=100, storage=slow
        )
        stalls = [e["flush_leftover_stall"] for e in plan.events]
        assert any(s > 0 for s in stalls[1:])

    def test_event_metadata(self):
        cfg = get_config("tiny-untied")
        plan = plan_strategy_async(cfg, FullStrategy(cfg, 5), total_steps=10)
        assert plan.num_events == 2
        for e in plan.events:
            assert "write_seconds_background" in e
            assert e["seconds"] >= 0


class TestGeneration:
    @pytest.fixture(scope="class")
    def model_tok(self):
        kb = MedicalKB.build(1)
        docs = pubmed_like_corpus(kb, n_docs=30, seed=0)
        tok = WordTokenizer.train(docs, vocab_size=256)
        cfg = get_config("tiny-untied").replace(vocab_size=tok.vocab_size)
        return build_model(cfg, seed=0), tok

    def test_greedy_is_deterministic(self, model_tok):
        model, tok = model_tok
        a = generate_text(model, tok, "the recommended treatment", max_new_tokens=8)
        b = generate_text(model, tok, "the recommended treatment", max_new_tokens=8)
        assert a == b

    def test_sampling_seeded(self, model_tok):
        model, tok = model_tok
        a = generate_text(model, tok, "patients with", temperature=1.0, seed=3,
                          max_new_tokens=6)
        b = generate_text(model, tok, "patients with", temperature=1.0, seed=3,
                          max_new_tokens=6)
        c = generate_text(model, tok, "patients with", temperature=1.0, seed=4,
                          max_new_tokens=6)
        assert a == b
        assert a != c or len(a.split()) > 0  # different seed usually differs

    def test_token_budget_respected(self, model_tok):
        model, tok = model_tok
        prompt = np.asarray(tok.encode("clinical evidence"), dtype=np.int64)
        out = generate(model, prompt, max_new_tokens=5, temperature=0.0)
        assert len(out) <= len(prompt) + 5

    def test_top_k_masks_tail(self, model_tok):
        model, tok = model_tok
        prompt = np.asarray(tok.encode("the"), dtype=np.int64)
        # With top_k=1, sampling degenerates to greedy.
        greedy = generate(model, prompt, max_new_tokens=4, temperature=0.0)
        topk1 = generate(model, prompt, max_new_tokens=4, temperature=1.0, top_k=1)
        np.testing.assert_array_equal(greedy, topk1)

    def test_invalid_args_rejected(self, model_tok):
        model, tok = model_tok
        with pytest.raises(ConfigError):
            generate(model, np.array([], dtype=np.int64))
        with pytest.raises(ConfigError):
            generate(model, np.array([1]), temperature=-1)

    def test_fingerprint_equality_for_equal_models(self, model_tok):
        model, tok = model_tok
        cfg = model.config
        clone = build_model(cfg, seed=0)
        clone.load_state_dict(model.state_dict())
        prompts = ["the recommended treatment for", "patients with"]
        assert greedy_continuations(model, tok, prompts) == greedy_continuations(
            clone, tok, prompts
        )


class TestPruneCLI:
    def test_prune_dry_run(self, tmp_path, capsys):
        from repro.train import TrainConfig, Trainer

        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=16,
            checkpoint_strategy="parity", checkpoint_interval=4,
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
        Trainer(cfg).train()
        rc = main(["prune", str(tmp_path / "run"), "--keep-last", "2", "--dry-run"])
        assert rc == 0
        assert "would remove" in capsys.readouterr().out
