"""Checkpoint layout, storage cost model, writer/reader round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import (
    CheckpointPaths,
    Storage,
    StorageCostModel,
    TensorFile,
    checkpoint_dir,
    describe_checkpoint,
    list_checkpoint_steps,
    load_checkpoint,
    read_latest,
    save_checkpoint,
    write_latest,
)
from repro.nn import model_slots
from repro.util.errors import CheckpointError

from conftest import make_engine, train_steps


class TestLayout:
    def test_checkpoint_dir_naming(self, tmp_path):
        paths = checkpoint_dir(tmp_path, 250)
        assert paths.dir.name == "checkpoint-250"
        assert paths.step == 250
        assert paths.shard(3).name == "zero_pp_rank_3_mp_rank_00_optim_states.blob"
        assert paths.optim_dir.name == "global_step250"

    def test_step_from_manifest_for_merged_dirs(self, tmp_path):
        d = tmp_path / "merged-output"
        d.mkdir()
        paths = CheckpointPaths(d)
        with pytest.raises(CheckpointError):
            _ = paths.step
        paths.write_manifest({"step": 77})
        assert paths.step == 77

    def test_list_checkpoint_steps_sorted(self, tmp_path):
        for s in (300, 100, 200):
            (tmp_path / f"checkpoint-{s}").mkdir()
        (tmp_path / "not-a-checkpoint").mkdir()
        assert list_checkpoint_steps(tmp_path) == [100, 200, 300]

    def test_latest_pointer_roundtrip(self, tmp_path):
        (tmp_path / "checkpoint-40").mkdir()
        write_latest(tmp_path, 40)
        assert read_latest(tmp_path).step == 40

    def test_latest_pointing_nowhere_raises(self, tmp_path):
        (tmp_path / "latest").write_text("checkpoint-999\n")
        with pytest.raises(CheckpointError):
            read_latest(tmp_path)

    def test_no_latest_returns_none(self, tmp_path):
        assert read_latest(tmp_path) is None


class TestStorageCostModel:
    def test_write_time_components(self):
        m = StorageCostModel(write_bandwidth=1e9, file_latency=0.01, concurrent_writers=8)
        # 1 GB over 1 file: 1s bandwidth + 0.01s latency.
        assert m.write_time(1e9, files=1) == pytest.approx(1.01)
        # 8 files in parallel amortize latency.
        assert m.write_time(1e9, files=8, parallel=8) == pytest.approx(1.01)

    def test_read_time_with_decompression(self):
        m = StorageCostModel(read_bandwidth=2e9, decompress_bandwidth=1e9, file_latency=0.0)
        plain = m.read_time(1e9, files=1)
        with_dc = m.read_time(1e9, files=1, decompress=True)
        assert with_dc == pytest.approx(plain + 1.0)

    def test_storage_charges_clock_and_stats(self, tmp_path):
        st = Storage(tmp_path, cost_model=StorageCostModel(write_bandwidth=1e9, file_latency=0))
        st.charge_write(5e8, category="checkpoint_write.weights")
        st.charge_compute(9.5)
        assert st.clock.total() == pytest.approx(10.0)
        assert st.clock.fraction("checkpoint_write") == pytest.approx(0.05)
        assert st.stats.bytes_written == 5e8

    def test_tree_nbytes(self, tmp_path):
        st = Storage(tmp_path)
        sub = tmp_path / "a"
        sub.mkdir()
        (sub / "x.bin").write_bytes(b"\x00" * 100)
        assert st.tree_nbytes("a") == 100
        assert st.tree_nbytes("missing") == 0


class TestSaveLoad:
    def test_full_checkpoint_roundtrip_bitwise(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        train_steps(model, engine, untied_config, 2)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=10, model=model, config=untied_config, engine=engine,
            trainer_state={"global_step": 10},
        )
        model2, engine2 = make_engine(untied_config, seed=99)
        loaded = load_checkpoint(
            paths, model=model2, config=untied_config, engine=engine2, storage=storage
        )
        assert loaded.step == 10
        a, b = engine.master_state_dict(), engine2.master_state_dict()
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])
        sa, sb = model.state_dict(), model2.state_dict()
        for k in sa:
            np.testing.assert_array_equal(sa[k], sb[k])

    def test_manifest_records_coverage(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=5, model=model, config=untied_config, engine=engine,
            trainer_state={}, slots=["layers.1", "embed_tokens"], strategy="custom",
        )
        manifest = paths.read_manifest()
        assert manifest["complete"] is False
        assert manifest["slots"] == ["embed_tokens", "layers.1"]  # canonical order
        assert manifest["strategy"] == "custom"
        assert manifest["world_size"] == engine.world_size

    def test_partial_weight_file_only_has_saved_slots(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=5, model=model, config=untied_config, engine=engine,
            trainer_state={}, slots=["layers.0"],
        )
        tf = TensorFile(paths.weights)
        assert all(n.startswith("model.layers.0.") for n in tf.names)

    def test_partial_is_smaller_than_full(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        full = save_checkpoint(
            storage, step=1, model=model, config=untied_config, engine=engine, trainer_state={}
        )
        half_slots = model_slots(untied_config)[: len(model_slots(untied_config)) // 2]
        partial = save_checkpoint(
            storage, step=2, model=model, config=untied_config, engine=engine,
            trainer_state={}, slots=half_slots,
        )
        assert partial.nbytes() < 0.8 * full.nbytes()

    def test_unknown_slot_rejected(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        with pytest.raises(CheckpointError, match="unknown slots"):
            save_checkpoint(
                storage, step=1, model=model, config=untied_config, engine=engine,
                trainer_state={}, slots=["layers.999"],
            )

    def test_zero_slots_rejected(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        with pytest.raises(CheckpointError, match="zero slots"):
            save_checkpoint(
                storage, step=1, model=model, config=untied_config, engine=engine,
                trainer_state={}, slots=[],
            )

    def test_partial_resume_rejected_with_guidance(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=1, model=model, config=untied_config, engine=engine,
            trainer_state={}, slots=["layers.0"],
        )
        with pytest.raises(CheckpointError, match="LLMTailor"):
            load_checkpoint(paths, model=model, config=untied_config, engine=engine)

    def test_mismatched_world_size_resharded_on_load(self, tmp_path, untied_config):
        """Elastic resume: a ws-2 checkpoint loads into a ws-3 engine.

        (Before the resharder existed this combination was rejected; it
        is now re-partitioned in memory during the load.)
        """
        import numpy as np

        model, engine = make_engine(untied_config, world_size=2)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=1, model=model, config=untied_config, engine=engine, trainer_state={}
        )
        model3, engine3 = make_engine(untied_config, world_size=3, seed=9)
        loaded = load_checkpoint(paths, model=model3, config=untied_config, engine=engine3)
        assert loaded.step == 1
        for name, value in engine.master_state_dict().items():
            np.testing.assert_array_equal(value, engine3.master_state_dict()[name])

    def test_wrong_model_config_rejected(self, tmp_path, untied_config, tied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=1, model=model, config=untied_config, engine=engine, trainer_state={}
        )
        model_t, engine_t = make_engine(tied_config)
        with pytest.raises(CheckpointError, match="written for model"):
            load_checkpoint(paths, model=model_t, config=tied_config, engine=engine_t)

    def test_latest_updated(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        save_checkpoint(storage, step=1, model=model, config=untied_config, engine=engine, trainer_state={})
        save_checkpoint(storage, step=2, model=model, config=untied_config, engine=engine, trainer_state={})
        assert read_latest(tmp_path).step == 2

    def test_describe_checkpoint(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        paths = save_checkpoint(
            storage, step=3, model=model, config=untied_config, engine=engine, trainer_state={}
        )
        info = describe_checkpoint(paths.dir)
        assert info["step"] == 3
        assert info["complete"] is True
        assert info["num_shards"] == engine.world_size
        assert info["total_nbytes"] > info["weight_nbytes"]

    def test_simulated_write_charges_by_category(self, tmp_path, untied_config):
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path)
        save_checkpoint(storage, step=1, model=model, config=untied_config, engine=engine, trainer_state={})
        cats = storage.clock.by_category
        assert "checkpoint_write.weights" in cats
        assert "checkpoint_write.optimizer" in cats
        assert "checkpoint_write.config" in cats
