"""bf16/fp16 simulation: rounding, packing, and byte-width guarantees."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import DType, bf16_rne, pack_bits, quantize, unpack_bits


class TestDTypeEnum:
    def test_itemsizes(self):
        assert DType.FP32.itemsize == 4
        assert DType.BF16.itemsize == 2
        assert DType.FP16.itemsize == 2

    def test_parse_strings(self):
        assert DType.parse("bf16") is DType.BF16
        assert DType.parse("FP32") is DType.FP32
        assert DType.parse(DType.FP16) is DType.FP16

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            DType.parse("int8")


class TestBF16Rounding:
    def test_exactly_representable_values_unchanged(self):
        # Values with <= 8 significand bits are exact in bf16.
        vals = np.array([0.0, 1.0, -2.5, 0.15625, 1024.0], dtype=np.float32)
        np.testing.assert_array_equal(bf16_rne(vals), vals)

    def test_low_bits_cleared(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        bits = bf16_rne(x).view(np.uint32)
        assert np.all((bits & 0xFFFF) == 0)

    def test_round_to_nearest_even_tie(self):
        # 1 + 2^-8 is exactly halfway between bf16 neighbours 1.0 and
        # 1+2^-7; RNE rounds to the even mantissa (1.0).
        tie = np.float32(1.0 + 2.0**-8)
        assert bf16_rne(np.array([tie]))[0] == np.float32(1.0)
        # 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6: rounds up to even.
        tie2 = np.float32(1.0 + 3 * 2.0**-8)
        assert bf16_rne(np.array([tie2]))[0] == np.float32(1.0 + 2.0**-6)

    def test_relative_error_bounded(self, rng):
        x = (rng.standard_normal(10_000) * 100).astype(np.float32)
        x = x[np.abs(x) > 1e-3]
        err = np.abs(bf16_rne(x) - x) / np.abs(x)
        assert err.max() < 2.0**-8  # half ULP of an 8-bit significand

    def test_nan_preserved(self):
        out = bf16_rne(np.array([np.nan, 1.0], dtype=np.float32))
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_inf_preserved(self):
        out = bf16_rne(np.array([np.inf, -np.inf], dtype=np.float32))
        assert np.isinf(out).all()

    def test_shape_preserved(self, rng):
        x = rng.standard_normal((3, 4, 5)).astype(np.float32)
        assert bf16_rne(x).shape == (3, 4, 5)


class TestQuantize:
    def test_fp32_is_identity_copy(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        q = quantize(x, DType.FP32)
        np.testing.assert_array_equal(q, x)
        assert q is not x

    def test_quantize_idempotent_all_dtypes(self, rng):
        x = rng.standard_normal(500).astype(np.float32)
        for dt in DType:
            once = quantize(x, dt)
            twice = quantize(once, dt)
            np.testing.assert_array_equal(once, twice)

    def test_fp16_matches_numpy(self, rng):
        x = rng.standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(
            quantize(x, DType.FP16), x.astype(np.float16).astype(np.float32)
        )


class TestPacking:
    def test_pack_width(self, rng):
        x = rng.standard_normal(64).astype(np.float32)
        assert pack_bits(x, DType.BF16).nbytes == 128
        assert pack_bits(x, DType.FP16).nbytes == 128
        assert pack_bits(x, DType.FP32).nbytes == 256

    def test_roundtrip_equals_quantize(self, rng):
        x = rng.standard_normal((7, 9)).astype(np.float32)
        for dt in DType:
            packed = pack_bits(x, dt)
            restored = unpack_bits(packed, dt).reshape(x.shape)
            np.testing.assert_array_equal(restored, quantize(x, dt))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=64,
        )
    )
    def test_property_roundtrip_is_projection(self, values):
        """pack→unpack→pack is stable for every dtype (projection)."""
        x = np.asarray(values, dtype=np.float32)
        for dt in DType:
            once = unpack_bits(pack_bits(x, dt), dt)
            twice = unpack_bits(pack_bits(once, dt), dt)
            np.testing.assert_array_equal(once, twice)
