"""Optimizers: update math, param groups, packed state dicts, schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Parameter, build_model
from repro.optim import (
    SGD,
    Adam,
    AdamW,
    ConstantLR,
    WarmupCosine,
    WarmupLinear,
    build_scheduler,
    clip_grad_norm_,
    default_param_groups,
    is_no_decay_param,
)
from repro.util.errors import ConfigError


def param(values):
    p = Parameter(np.asarray(values, dtype=np.float32))
    return p


class TestSGD:
    def test_basic_step(self):
        p = param([1.0, 2.0])
        p.grad = np.array([0.5, 0.5], dtype=np.float32)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 1.95])

    def test_momentum_accumulates(self):
        p = param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf=1, p=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # buf=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)

    def test_weight_decay_enters_gradient(self):
        p = param([2.0])
        p.grad = np.zeros(1, dtype=np.float32)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ConfigError):
            SGD([param([1.0])], nesterov=True)


class TestAdamFamily:
    def _manual_adamw(self, w, g, lr, b1, b2, eps, wd, steps):
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        for t in range(1, steps + 1):
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g * g
            mh = m / (1 - b1**t)
            vh = v / (1 - b2**t)
            w = w * (1 - lr * wd)
            w = w - lr * mh / (np.sqrt(vh) + eps)
        return w

    def test_adamw_matches_reference_multi_step(self):
        w0 = np.array([1.0, -2.0, 0.5], dtype=np.float32)
        g = np.array([0.1, -0.2, 0.3], dtype=np.float32)
        p = param(w0.copy())  # the optimizer updates its buffer in place
        opt = AdamW([p], lr=1e-2, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.1)
        for _ in range(5):
            p.grad = g.copy()
            opt.step()
        expected = self._manual_adamw(w0.astype(np.float64), g, 1e-2, 0.9, 0.999, 1e-8, 0.1, 5)
        np.testing.assert_allclose(p.data, expected, rtol=1e-5)

    def test_adam_couples_decay_adamw_decouples(self):
        """With zero gradient, Adam's L2 term builds momentum; AdamW just shrinks."""
        pa, pw = param([1.0]), param([1.0])
        a = Adam([pa], lr=0.1, weight_decay=0.5)
        w = AdamW([pw], lr=0.1, weight_decay=0.5)
        pa.grad = np.zeros(1, dtype=np.float32)
        pw.grad = np.zeros(1, dtype=np.float32)
        a.step()
        w.step()
        np.testing.assert_allclose(pw.data, [1.0 * (1 - 0.1 * 0.5)])
        assert pa.data[0] != pw.data[0]

    def test_skips_params_without_grad(self):
        p = param([1.0])
        AdamW([p]).step()
        np.testing.assert_array_equal(p.data, [1.0])

    def test_invalid_hyperparams_rejected(self):
        p = param([1.0])
        with pytest.raises(ConfigError):
            AdamW([p], lr=-1)
        with pytest.raises(ConfigError):
            AdamW([p], betas=(1.5, 0.9))
        with pytest.raises(ConfigError):
            AdamW([p], eps=0)

    def test_per_group_hyperparams(self):
        p1, p2 = param([1.0]), param([1.0])
        opt = AdamW(
            [
                {"params": [p1], "weight_decay": 0.0},
                {"params": [p2], "weight_decay": 0.5},
            ],
            lr=0.1,
        )
        p1.grad = np.zeros(1, dtype=np.float32)
        p2.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p1.data, [1.0])
        np.testing.assert_allclose(p2.data, [0.95])

    def test_param_in_two_groups_rejected(self):
        p = param([1.0])
        with pytest.raises(ConfigError):
            AdamW([{"params": [p]}, {"params": [p]}])

    def test_empty_params_rejected(self):
        with pytest.raises(ConfigError):
            AdamW([])


class TestPackedStateDict:
    def _stepped_optimizer(self):
        p1, p2, p3 = param([1.0, 2.0]), param([3.0]), param([[4.0, 5.0]])
        opt = AdamW(
            [
                {"params": [p1, p2], "weight_decay": 0.0, "name": "no_decay"},
                {"params": [p3], "weight_decay": 0.01, "name": "decay"},
            ],
            lr=1e-3,
        )
        for p in (p1, p2, p3):
            p.grad = np.ones_like(p.data)
        opt.step()
        return opt, (p1, p2, p3)

    def test_packed_format_matches_pytorch_layout(self):
        opt, _ = self._stepped_optimizer()
        sd = opt.state_dict()
        assert set(sd) == {"state", "param_groups"}
        assert sd["param_groups"][0]["params"] == [0, 1]
        assert sd["param_groups"][1]["params"] == [2]
        assert sd["param_groups"][0]["name"] == "no_decay"
        assert set(sd["state"][0]) == {"step", "exp_avg", "exp_avg_sq"}

    def test_state_dict_is_a_snapshot(self):
        opt, (p1, *_) = self._stepped_optimizer()
        sd = opt.state_dict()
        before = sd["state"][0]["exp_avg"].copy()
        p1.grad = np.full_like(p1.data, 5.0)
        opt.step()
        np.testing.assert_array_equal(sd["state"][0]["exp_avg"], before)

    def test_roundtrip_restores_trajectory(self):
        opt, params = self._stepped_optimizer()
        sd = opt.state_dict()

        # Fresh optimizer over same-shaped params, load, then both step
        # identically.
        clones = [param(p.data.copy()) for p in params]
        opt2 = AdamW(
            [
                {"params": clones[:2], "weight_decay": 0.0, "name": "no_decay"},
                {"params": clones[2:], "weight_decay": 0.01, "name": "decay"},
            ],
            lr=1e-3,
        )
        opt2.load_state_dict(sd)
        for p, c in zip(params, clones):
            p.grad = np.ones_like(p.data)
            c.grad = np.ones_like(c.data)
        opt.step()
        opt2.step()
        for p, c in zip(params, clones):
            np.testing.assert_array_equal(p.data, c.data)

    def test_load_rejects_group_count_mismatch(self):
        opt, _ = self._stepped_optimizer()
        sd = opt.state_dict()
        other = AdamW([param([1.0])])
        with pytest.raises(ConfigError):
            other.load_state_dict(sd)

    def test_load_rejects_state_shape_mismatch(self):
        opt, _ = self._stepped_optimizer()
        sd = opt.state_dict()
        sd["state"][0]["exp_avg"] = np.zeros(7, dtype=np.float32)
        clone, _ = self._stepped_optimizer()
        with pytest.raises(ConfigError):
            clone.load_state_dict(sd)


class TestClipGradNorm:
    def test_clips_to_max(self):
        p = param([3.0, 4.0])
        p.grad = p.data.copy()  # norm 5
        total = clip_grad_norm_([p], 1.0)
        assert total == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_below_max(self):
        p = param([0.3, 0.4])
        p.grad = p.data.copy()
        clip_grad_norm_([p], 1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestGrouping:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("model.layers.0.self_attn.q_proj.weight", False),
            ("model.layers.0.self_attn.q_proj.bias", True),
            ("model.layers.3.input_layernorm.weight", True),
            ("model.layers.3.post_attention_layernorm.weight", True),
            ("model.norm.weight", True),
            ("model.embed_tokens.weight", False),
            ("lm_head.weight", False),
        ],
    )
    def test_no_decay_classification(self, name, expected):
        assert is_no_decay_param(name) is expected

    def test_default_two_groups_cover_model(self):
        model = build_model("tiny-qwen", seed=0)
        groups = default_param_groups(model, 0.01)
        assert len(groups) == 2
        assert groups[0]["weight_decay"] == 0.0
        assert groups[1]["weight_decay"] == 0.01
        total = sum(len(g["params"]) for g in groups)
        assert total == len(list(model.parameters()))
        # Qwen biases land in the no-decay group.
        assert any(n.endswith(".bias") for n in groups[0]["param_names"])


class TestSchedulers:
    def _opt(self):
        return AdamW([param([1.0])], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        for _ in range(5):
            sched.step()
        assert sched.get_last_lr() == [1.0]

    def test_warmup_linear_profile(self):
        sched = WarmupLinear(self._opt(), warmup_steps=10, total_steps=20)
        assert sched.get_last_lr()[0] == 0.0  # step 0
        for _ in range(10):
            sched.step()
        assert sched.get_last_lr()[0] == pytest.approx(1.0)
        for _ in range(10):
            sched.step()
        assert sched.get_last_lr()[0] == pytest.approx(0.0)

    def test_warmup_cosine_midpoint(self):
        sched = WarmupCosine(self._opt(), warmup_steps=0, total_steps=100)
        for _ in range(50):
            sched.step()
        assert sched.get_last_lr()[0] == pytest.approx(0.5, abs=1e-6)

    def test_state_roundtrip(self):
        sched = WarmupCosine(self._opt(), warmup_steps=5, total_steps=50)
        for _ in range(17):
            sched.step()
        state = sched.state_dict()
        sched2 = WarmupCosine(self._opt(), warmup_steps=5, total_steps=50)
        sched2.load_state_dict(state)
        assert sched2.get_last_lr() == sched.get_last_lr()
        assert sched2.last_step == 17

    def test_load_rejects_wrong_type(self):
        state = ConstantLR(self._opt()).state_dict()
        sched = WarmupLinear(self._opt(), 1, 10)
        with pytest.raises(ConfigError):
            sched.load_state_dict(state)

    def test_build_scheduler_names(self):
        assert isinstance(build_scheduler("constant", self._opt()), ConstantLR)
        with pytest.raises(ConfigError):
            build_scheduler("exotic", self._opt())
