"""End-to-end invariants stated by the paper, checked at test scale."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LLMTailor
from repro.core.groups import groups_for_slot, slot_of_group
from repro.io import CheckpointPaths, list_checkpoint_steps
from repro.nn import get_config, list_configs, model_slots, slot_param_counts
from repro.strategies import OPTIMIZER_BYTES_PER_PARAM
from repro.train import TrainConfig, Trainer


class TestSizeArithmetic:
    def test_checkpoint_is_at_least_7x_model(self):
        """§2.2: weights 2 B/param, optimizer >= 12 B/param -> >= 7x."""
        assert (2 + OPTIMIZER_BYTES_PER_PARAM) / 2 >= 7.0

    @pytest.mark.parametrize("name", ["llama3.2-1b", "llama3.1-8b", "qwen2.5-7b"])
    def test_measured_partial_fraction_matches_analytic(self, name):
        """Per-slot byte shares sum to 1 and transformer layers dominate."""
        cfg = get_config(name)
        counts = slot_param_counts(cfg)
        total = sum(counts.values())
        layer_share = sum(v for s, v in counts.items() if s.startswith("layers.")) / total
        assert 0.6 < layer_share < 0.95

    def test_all_registered_configs_obey_group_formula(self):
        for name in list_configs():
            cfg = get_config(name)
            x = 2 if cfg.tie_word_embeddings else 3
            assert cfg.num_param_groups_tailored == 2 * cfg.num_hidden_layers + x

    @settings(max_examples=40, deadline=None)
    @given(
        layers=st.integers(1, 64),
        tied=st.booleans(),
        index=st.integers(0, 200),
    )
    def test_property_slot_group_bijection_random_topologies(self, layers, tied, index):
        cfg = get_config("tiny-untied").replace(
            name="prop", num_hidden_layers=layers, tie_word_embeddings=tied
        )
        total = cfg.num_param_groups_tailored
        g = index % total
        slot = slot_of_group(cfg, g)
        assert g in groups_for_slot(cfg, slot)
        # Full coverage, no overlap.
        seen: list[int] = []
        for s in model_slots(cfg):
            seen.extend(groups_for_slot(cfg, s))
        assert sorted(seen) == list(range(total))


class TestRecoverabilityProperty:
    """Every strategy must leave a trail from which LLMTailor can rebuild
    a complete checkpoint at any failure point after the first event —
    and the merged state must equal the newest saved copy of each slot.
    """

    @pytest.fixture(scope="class")
    def filtered_trail(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("filtered-trail")
        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=18,
            checkpoint_strategy="filtered", checkpoint_interval=3,
            strategy_kwargs={"head_layers": 1, "tail_layers": 1, "slow_factor": 2},
            output_dir=str(out), world_size=2, micro_batch_size=2,
            grad_accum_steps=1, seq_len=32,
        )
        trainer = Trainer(cfg)
        trainer.train()
        return trainer

    @pytest.mark.parametrize("failure_step", [4, 7, 10, 16, 18])
    def test_merge_possible_at_any_failure_point(self, filtered_trail, tmp_path, failure_step):
        tailor = LLMTailor.from_checkpoints(
            filtered_trail.storage.root, failure_step=failure_step
        )
        result = tailor.merge(output=tmp_path / f"m{failure_step}")
        assert result.verify_report is not None and result.verify_report.ok
        manifest = result.output.read_manifest()
        assert manifest["complete"]
        # Merged step = newest checkpoint at or before the failure.
        usable = [s for s in list_checkpoint_steps(filtered_trail.storage.root)
                  if s <= failure_step]
        assert manifest["step"] == max(usable)

    def test_merged_base_step_never_exceeds_failure(self, filtered_trail, tmp_path):
        tailor = LLMTailor.from_checkpoints(filtered_trail.storage.root, failure_step=10)
        for path in tailor.recipe.distinct_sources():
            assert CheckpointPaths(path).step <= 10


class TestTrajectoryOverlay:
    """Artifact expectation 3: parity recovery 'closely matches (or even
    exactly overlays)' the uninterrupted trajectory."""

    def test_parity_recovery_loss_overlays_baseline(self, tmp_path):
        def run(strategy, failure, out):
            cfg = TrainConfig(
                model="tiny-untied", task="cpt", total_steps=20,
                checkpoint_strategy=strategy, checkpoint_interval=4,
                failure_step=failure, output_dir=str(tmp_path / out),
                world_size=2, micro_batch_size=2, grad_accum_steps=1,
                seq_len=32, log_every=2,
            )
            return Trainer(cfg)

        baseline = run("full", None, "base")
        baseline.train()

        parity = run("parity", 18, "parity")
        parity.train()
        parity.auto_recover(18)
        parity.train()

        base_losses = {e["step"]: e["loss"] for e in baseline.state.log_history}
        par_losses = {e["step"]: e["loss"] for e in parity.state.log_history}
        # Final-step losses land close (identical seeds, merged state mixes
        # two recent snapshots, so exact equality is not required).
        assert abs(base_losses[20] - par_losses[20]) < 0.15

    def test_identity_recovery_is_exact_overlay(self, tmp_path):
        """With FULL checkpoints, crash+resume replays bit-for-bit."""
        def make(out, failure):
            cfg = TrainConfig(
                model="tiny-untied", task="cpt", total_steps=16,
                checkpoint_strategy="full", checkpoint_interval=4,
                failure_step=failure, output_dir=str(tmp_path / out),
                world_size=2, micro_batch_size=2, grad_accum_steps=1,
                seq_len=32, log_every=1,
            )
            return Trainer(cfg)

        straight = make("straight", None)
        straight.train()

        crashed = make("crashed", 14)
        crashed.train()
        crashed.auto_recover(14)  # identity merge of checkpoint-12
        crashed.train()

        a = straight.engine.master_state_dict()
        b = crashed.engine.master_state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key], err_msg=key)
        # Loss curve after the failure overlays exactly.
        sl = {e["step"]: e["loss"] for e in straight.state.log_history}
        cl = {e["step"]: e["loss"] for e in crashed.state.log_history}
        for step in (13, 14, 15, 16):
            assert sl[step] == cl[step]
