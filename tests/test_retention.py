"""Coverage-aware checkpoint retention."""

from __future__ import annotations

import pytest

from repro.core import LLMTailor
from repro.io import (
    checkpoint_dir,
    coverage_map,
    latest_complete_step,
    list_checkpoint_steps,
    prunable_steps,
    prune_checkpoints,
    read_latest,
)
from repro.train import TrainConfig, Trainer
from repro.util.errors import CheckpointError


@pytest.fixture
def parity_run(tmp_path):
    cfg = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="parity", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32,
    )
    trainer = Trainer(cfg)
    trainer.train()
    return trainer  # checkpoints at 4 (full), 8, 12, 16, 20, 24


class TestCoverageMap:
    def test_maps_all_checkpoints(self, parity_run):
        cov = coverage_map(parity_run.storage.root)
        assert sorted(cov) == [4, 8, 12, 16, 20, 24]
        # The first parity checkpoint is full; later ones are halves.
        assert len(cov[4]) == parity_run.model_config.num_model_slots
        assert len(cov[8]) < len(cov[4])


class TestPrunable:
    def test_keeps_last_n_protected(self, parity_run):
        prunable = prunable_steps(parity_run.storage.root, keep_last=2)
        assert 20 not in prunable and 24 not in prunable

    def test_never_breaks_coverage(self, parity_run):
        root = parity_run.storage.root
        prunable = prunable_steps(root, keep_last=2)
        survivors = set(list_checkpoint_steps(root)) - set(prunable)
        cov = coverage_map(root)
        all_slots = set().union(*cov.values())
        surviving_slots = set().union(*(cov[s] for s in survivors))
        assert surviving_slots == all_slots

    def test_nothing_prunable_when_few_checkpoints(self, parity_run):
        assert prunable_steps(parity_run.storage.root, keep_last=10) == []

    def test_keep_last_validated(self, parity_run):
        with pytest.raises(CheckpointError):
            prunable_steps(parity_run.storage.root, keep_last=0)


class TestPrune:
    def test_prune_removes_dirs_and_preserves_recovery(self, parity_run, tmp_path):
        root = parity_run.storage.root
        removed = prune_checkpoints(root, keep_last=2)
        assert removed
        for step in removed:
            assert not checkpoint_dir(root, step).exists()
        # Recovery must still work from the survivors.
        tailor = LLMTailor.from_checkpoints(root)
        result = tailor.merge(output=tmp_path / "merged")
        assert result.output.read_manifest()["complete"]

    def test_dry_run_deletes_nothing(self, parity_run):
        root = parity_run.storage.root
        before = list_checkpoint_steps(root)
        removed = prune_checkpoints(root, keep_last=2, dry_run=True)
        assert removed
        assert list_checkpoint_steps(root) == before

    def test_latest_pointer_never_pruned(self, parity_run):
        root = parity_run.storage.root
        prune_checkpoints(root, keep_last=1)
        assert read_latest(root) is not None


class TestCompleteCheckpointAnchor:
    """Retention must never evict the last complete checkpoint set."""

    def test_latest_complete_step_finds_full_snapshot(self, parity_run):
        # Parity's initial full snapshot at step 4 is the only complete one.
        assert latest_complete_step(parity_run.storage.root) == 4

    def test_latest_complete_step_none_without_full(self, tmp_path):
        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=8,
            checkpoint_strategy="parity", checkpoint_interval=4,
            strategy_kwargs={"initial_full": False},
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
        Trainer(cfg).train()
        assert latest_complete_step(tmp_path / "run") is None

    def test_newest_complete_checkpoint_protected(self, parity_run):
        """Partial coverage of step 4's slots must not make it prunable.

        Steps 8..24 jointly cover every slot, so pure coverage logic
        would happily delete the full step-4 snapshot — but it is the
        only merge-free, world-size-consistent resume point.
        """
        root = parity_run.storage.root
        cov = coverage_map(root)
        later = set().union(*(cov[s] for s in cov if s > 4))
        assert later == set(cov[4])  # coverage alone would allow pruning 4
        assert 4 not in prunable_steps(root, keep_last=2)
        prune_checkpoints(root, keep_last=2)
        assert checkpoint_dir(root, 4).exists()
        assert checkpoint_dir(root, 4).read_manifest()["complete"]

    def test_failure_triggered_resume_survives_aggressive_retention(self, tmp_path):
        """Chaos + retention: the recovery anchor outlives the pruner."""
        from repro.dist.faults import FaultPlan, rank_failure
        from repro.train import train_with_faults

        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=24,
            checkpoint_strategy="parity", checkpoint_interval=4,
            max_checkpoints=1,  # maximally aggressive pruning
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
        plan = FaultPlan(events=(rank_failure(22, 1),))
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        assert result.final_step == 24
        # The complete anchor was never evicted along the way.
        assert latest_complete_step(tmp_path / "run") is not None


class TestTrainerIntegration:
    def test_max_checkpoints_prunes_during_training(self, tmp_path):
        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=24,
            checkpoint_strategy="parity", checkpoint_interval=4,
            max_checkpoints=3,
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
        trainer = Trainer(cfg)
        trainer.train()
        steps = list_checkpoint_steps(trainer.storage.root)
        assert len(steps) <= 4  # 3 protected + possibly one coverage-pinned
        # And recovery still works.
        merged = trainer.auto_recover(24)
        assert merged.exists()
