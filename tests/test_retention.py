"""Coverage-aware checkpoint retention."""

from __future__ import annotations

import pytest

from repro.core import LLMTailor
from repro.io import (
    checkpoint_dir,
    coverage_map,
    list_checkpoint_steps,
    prunable_steps,
    prune_checkpoints,
    read_latest,
)
from repro.train import TrainConfig, Trainer
from repro.util.errors import CheckpointError


@pytest.fixture
def parity_run(tmp_path):
    cfg = TrainConfig(
        model="tiny-untied", task="cpt", total_steps=24,
        checkpoint_strategy="parity", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32,
    )
    trainer = Trainer(cfg)
    trainer.train()
    return trainer  # checkpoints at 4 (full), 8, 12, 16, 20, 24


class TestCoverageMap:
    def test_maps_all_checkpoints(self, parity_run):
        cov = coverage_map(parity_run.storage.root)
        assert sorted(cov) == [4, 8, 12, 16, 20, 24]
        # The first parity checkpoint is full; later ones are halves.
        assert len(cov[4]) == parity_run.model_config.num_model_slots
        assert len(cov[8]) < len(cov[4])


class TestPrunable:
    def test_keeps_last_n_protected(self, parity_run):
        prunable = prunable_steps(parity_run.storage.root, keep_last=2)
        assert 20 not in prunable and 24 not in prunable

    def test_never_breaks_coverage(self, parity_run):
        root = parity_run.storage.root
        prunable = prunable_steps(root, keep_last=2)
        survivors = set(list_checkpoint_steps(root)) - set(prunable)
        cov = coverage_map(root)
        all_slots = set().union(*cov.values())
        surviving_slots = set().union(*(cov[s] for s in survivors))
        assert surviving_slots == all_slots

    def test_nothing_prunable_when_few_checkpoints(self, parity_run):
        assert prunable_steps(parity_run.storage.root, keep_last=10) == []

    def test_keep_last_validated(self, parity_run):
        with pytest.raises(CheckpointError):
            prunable_steps(parity_run.storage.root, keep_last=0)


class TestPrune:
    def test_prune_removes_dirs_and_preserves_recovery(self, parity_run, tmp_path):
        root = parity_run.storage.root
        removed = prune_checkpoints(root, keep_last=2)
        assert removed
        for step in removed:
            assert not checkpoint_dir(root, step).exists()
        # Recovery must still work from the survivors.
        tailor = LLMTailor.from_checkpoints(root)
        result = tailor.merge(output=tmp_path / "merged")
        assert result.output.read_manifest()["complete"]

    def test_dry_run_deletes_nothing(self, parity_run):
        root = parity_run.storage.root
        before = list_checkpoint_steps(root)
        removed = prune_checkpoints(root, keep_last=2, dry_run=True)
        assert removed
        assert list_checkpoint_steps(root) == before

    def test_latest_pointer_never_pruned(self, parity_run):
        root = parity_run.storage.root
        prune_checkpoints(root, keep_last=1)
        assert read_latest(root) is not None


class TestTrainerIntegration:
    def test_max_checkpoints_prunes_during_training(self, tmp_path):
        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=24,
            checkpoint_strategy="parity", checkpoint_interval=4,
            max_checkpoints=3,
            output_dir=str(tmp_path / "run"), world_size=2,
            micro_batch_size=2, grad_accum_steps=1, seq_len=32,
        )
        trainer = Trainer(cfg)
        trainer.train()
        steps = list_checkpoint_steps(trainer.storage.root)
        assert len(steps) <= 4  # 3 protected + possibly one coverage-pinned
        # And recovery still works.
        merged = trainer.auto_recover(24)
        assert merged.exists()
