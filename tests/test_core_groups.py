"""The 2 -> 2L+x parameter-group reconstruction (paper §4.1, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.core.groups import (
    group_layout_table,
    groups_for_slot,
    slot_of_group,
    tailored_group_specs,
    tailored_param_groups,
)
from repro.nn import build_model, get_config, model_slots, parameter_shapes
from repro.util.errors import ConfigError


class TestSpecLayout:
    def test_group_count_is_2L_plus_x(self, tiny_config):
        specs = tailored_group_specs(tiny_config)
        assert len(specs) == tiny_config.num_param_groups_tailored

    def test_paper_fig3_count_for_16_layer_untied(self):
        """Fig. 3: a 16-layer model with lm_head goes from 2 to 35 groups."""
        cfg = get_config("llama3.2-1b").replace(
            name="fig3", tie_word_embeddings=False
        )
        assert len(tailored_group_specs(cfg)) == 35

    def test_canonical_order(self, untied_config):
        """Norm first, then per-layer no-decay, embed, lm_head, per-layer decay."""
        specs = tailored_group_specs(untied_config)
        L = untied_config.num_hidden_layers
        assert specs[0].slot == "norm" and not specs[0].is_decay
        for i in range(L):
            assert specs[1 + i].slot == f"layers.{i}" and not specs[1 + i].is_decay
        assert specs[L + 1].slot == "embed_tokens" and specs[L + 1].is_decay
        assert specs[L + 2].slot == "lm_head" and specs[L + 2].is_decay
        for i in range(L):
            assert specs[L + 3 + i].slot == f"layers.{i}" and specs[L + 3 + i].is_decay

    def test_tied_model_skips_lm_head_group(self, tied_config):
        specs = tailored_group_specs(tied_config)
        assert all(s.slot != "lm_head" for s in specs)
        L = tied_config.num_hidden_layers
        assert specs[L + 2].slot == "layers.0" and specs[L + 2].is_decay

    def test_exact_parameter_coverage(self, tiny_config):
        specs = tailored_group_specs(tiny_config)
        seen = [n for s in specs for n in s.param_names]
        assert sorted(seen) == sorted(parameter_shapes(tiny_config))
        assert len(seen) == len(set(seen))

    def test_decay_assignment_preserved(self, tiny_config):
        """Biases/norms in zero-decay groups; weights keep the decay (§4.1)."""
        for spec in tailored_group_specs(tiny_config, weight_decay=0.05):
            if spec.is_decay:
                assert spec.weight_decay == 0.05
                assert all(not n.endswith(".bias") for n in spec.param_names)
                assert all("layernorm" not in n for n in spec.param_names)
            else:
                assert spec.weight_decay == 0.0
                for name in spec.param_names:
                    assert name.endswith(".bias") or "norm" in name

    def test_qwen_biases_in_layer_nodecay_groups(self):
        specs = tailored_group_specs(get_config("tiny-qwen"))
        layer0_nodecay = next(s for s in specs if s.name == "layer_0_nodecay")
        assert any(n.endswith("q_proj.bias") for n in layer0_nodecay.param_names)

    def test_zero_weight_decay_rejected(self, untied_config):
        with pytest.raises(ConfigError):
            tailored_group_specs(untied_config, weight_decay=0.0)

    def test_layout_table_rows(self, untied_config):
        rows = group_layout_table(untied_config)
        assert len(rows) == untied_config.num_param_groups_tailored
        assert rows[0]["group"] == "norm"
        assert all({"index", "group", "slot", "weight_decay", "num_params"} <= set(r) for r in rows)


class TestSlotGroupBijection:
    def test_roundtrip_every_group(self, tiny_config):
        total = tiny_config.num_param_groups_tailored
        for g in range(total):
            slot = slot_of_group(tiny_config, g)
            assert g in groups_for_slot(tiny_config, slot)

    def test_roundtrip_every_slot(self, tiny_config):
        seen = []
        for slot in model_slots(tiny_config):
            idxs = groups_for_slot(tiny_config, slot)
            expected = 2 if slot.startswith("layers.") else 1
            assert len(idxs) == expected
            seen.extend(idxs)
        assert sorted(seen) == list(range(tiny_config.num_param_groups_tailored))

    def test_matches_spec_slots(self, tiny_config):
        specs = tailored_group_specs(tiny_config)
        for spec in specs:
            assert slot_of_group(tiny_config, spec.index) == spec.slot

    def test_out_of_range_rejected(self, untied_config):
        with pytest.raises(ConfigError):
            slot_of_group(untied_config, 999)
        with pytest.raises(ConfigError):
            groups_for_slot(untied_config, "layers.99")
        with pytest.raises(ConfigError):
            groups_for_slot(untied_config, "attention")

    def test_tied_lm_head_group_rejected(self, tied_config):
        with pytest.raises(ConfigError):
            groups_for_slot(tied_config, "lm_head")

    def test_full_scale_configs_consistent(self):
        """Group arithmetic is pure topology: works at published scale."""
        for name in ("llama3.2-1b", "llama3.1-8b", "qwen2.5-7b"):
            cfg = get_config(name)
            total = cfg.num_param_groups_tailored
            covered = []
            for slot in model_slots(cfg):
                covered.extend(groups_for_slot(cfg, slot))
            assert sorted(covered) == list(range(total))


class TestLiveGroups:
    def test_param_groups_reference_model_tensors(self, untied_config):
        model = build_model(untied_config, seed=0)
        groups = tailored_param_groups(model, untied_config, 0.01)
        by_name = dict(model.named_parameters())
        for group in groups:
            for name, p in zip(group["param_names"], group["params"]):
                assert p is by_name[name]

    def test_group_metadata_present(self, untied_config):
        model = build_model(untied_config, seed=0)
        groups = tailored_param_groups(model, untied_config, 0.01)
        assert groups[0]["name"] == "norm"
        assert groups[0]["slot"] == "norm"
        assert all("weight_decay" in g for g in groups)
