"""Hierarchical topology: cluster shapes, bitwise identity, cost parity.

The tentpole invariant is absolute: a hierarchical run over any
``nodes x ranks_per_node`` cluster produces **bitwise-identical**
masters, Adam moments, and bf16 weights to the flat ring at the same
world size — the hierarchy lives entirely in the cost model.  The
property battery sweeps cluster shapes over world sizes 2–8 and pins
every collective's per-link-class byte accounting to the closed-form
2D algebra; the trainer-level tests extend the identity through chaos
recovery, the compiled tape, and the mp backend; the validation tests
close the dangling degraded-link gap.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import HierComm, SimComm, Topology, reshard_checkpoint
from repro.dist.faults import (
    ChaosComm,
    FaultPlan,
    degraded_link,
    node_failure,
    rank_failure,
    rank_join,
)
from repro.dist.mpcomm import mp_available, mp_unavailable_reason
from repro.dist.reshard import placement_transfer_bytes
from repro.dist.topology import LINK_CLASSES
from repro.io import CheckpointPaths
from repro.nn import get_config
from repro.strategies import (
    plan_fault_cost,
    plan_reshard_cost,
    plan_step_traffic,
)
from repro.train import ChaosSupervisor, TrainConfig, Trainer
from repro.util.errors import ConfigError, DistError

REL = 1e-9


def topo_config(tmp_path, *, topology: Topology | None, **overrides) -> TrainConfig:
    base = dict(
        model="tiny-untied", task="cpt", total_steps=6,
        checkpoint_strategy="full", checkpoint_interval=3,
        output_dir=str(tmp_path), world_size=4,
        micro_batch_size=1, grad_accum_steps=1, seq_len=32, log_every=3,
        topology=None if topology is None else topology.to_dict(),
    )
    base.update(overrides)
    return TrainConfig(**base)


def assert_states_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


def assert_rank_shards_equal(eng_a, eng_b) -> None:
    assert eng_a.world_size == eng_b.world_size
    for rank in range(eng_a.world_size):
        a, b = eng_a.rank_state_dict(rank), eng_b.rank_state_dict(rank)
        assert set(a["fp32_flat_groups"]) == set(b["fp32_flat_groups"])
        for g, flat in a["fp32_flat_groups"].items():
            np.testing.assert_array_equal(flat, b["fp32_flat_groups"][g])
            np.testing.assert_array_equal(
                a["state"][g]["exp_avg"], b["state"][g]["exp_avg"]
            )
            np.testing.assert_array_equal(
                a["state"][g]["exp_avg_sq"], b["state"][g]["exp_avg_sq"]
            )


def assert_trainers_bitwise(tr_a, tr_b) -> None:
    assert_states_equal(tr_a.engine.master_state_dict(), tr_b.engine.master_state_dict())
    assert_states_equal(tr_a.model.state_dict(), tr_b.model.state_dict())
    assert_rank_shards_equal(tr_a.engine, tr_b.engine)


# ---------------------------------------------------------------------------
# Topology: the shape object itself
# ---------------------------------------------------------------------------

class TestTopology:
    def test_shape_and_capacity(self):
        topo = Topology(nodes=2, ranks_per_node=4)
        assert topo.world_size == 8
        assert topo.shape == "2x4"
        assert topo.node_of(0) == 0 and topo.node_of(5) == 1
        assert topo.local_rank(5) == 1
        assert topo.node_ranks(1) == [4, 5, 6, 7]
        assert topo.node_ranks(1, world_size=6) == [4, 5]
        assert topo.leaders() == [0, 4]
        assert topo.leaders(world_size=4) == [0]

    def test_group_shape_elastic(self):
        topo = Topology(nodes=2, ranks_per_node=4)
        assert topo.group_shape(8) == (2, 4)
        assert topo.group_shape(5) == (2, 4)
        assert topo.group_shape(3) == (1, 3)  # below one node: flat
        assert topo.group_shape(1) == (1, 1)
        with pytest.raises(DistError):
            topo.group_shape(9)
        with pytest.raises(DistError):
            topo.group_shape(0)

    @pytest.mark.parametrize("bad", [
        {"nodes": 0, "ranks_per_node": 2},
        {"nodes": 2, "ranks_per_node": -1},
        {"nodes": 2.0, "ranks_per_node": 2},
        {"nodes": True, "ranks_per_node": 2},
        {"nodes": 2, "ranks_per_node": 2, "intra_bandwidth": 0.0},
        {"nodes": 2, "ranks_per_node": 2, "inter_bandwidth": float("inf")},
        {"nodes": 2, "ranks_per_node": 2, "inter_bandwidth": "fast"},
    ])
    def test_invalid_construction(self, bad):
        with pytest.raises(DistError):
            Topology(**bad)

    def test_rank_out_of_range(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        with pytest.raises(DistError):
            topo.node_of(4)
        with pytest.raises(DistError):
            topo.node_of(-1)
        with pytest.raises(DistError):
            topo.node_ranks(2)

    def test_link_classes(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        assert topo.link_class(0, 1) == "intra"
        assert topo.link_class(1, 2) == "inter"
        assert topo.bandwidth("intra") == topo.intra_bandwidth
        assert topo.bandwidth("inter") == topo.inter_bandwidth
        with pytest.raises(DistError):
            topo.bandwidth("warp")

    def test_has_link_is_the_2d_edge_set(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        assert topo.has_link(0, 1)       # intra-node pair
        assert topo.has_link(0, 2)       # leader-to-leader
        assert not topo.has_link(1, 3)   # non-leaders on different nodes
        assert not topo.has_link(1, 2)
        assert not topo.has_link(0, 0)   # self-loop is not an edge

    def test_from_shape(self):
        topo = Topology.from_shape("3x2", inter_bandwidth=1e9)
        assert (topo.nodes, topo.ranks_per_node) == (3, 2)
        assert topo.inter_bandwidth == 1e9
        for bad in ("3", "3x", "ax2", "3x2x1", ""):
            with pytest.raises(DistError):
                Topology.from_shape(bad)

    def test_dict_round_trip_and_unknown_keys(self):
        topo = Topology(nodes=2, ranks_per_node=3, intra_bandwidth=2e11)
        assert Topology.from_dict(topo.to_dict()) == topo
        with pytest.raises(DistError):
            Topology.from_dict({"nodes": 2, "ranks_per_node": 2, "gpus": 8})
        with pytest.raises(DistError):
            Topology.from_dict({"nodes": 2})
        with pytest.raises(DistError):
            Topology.from_dict([2, 2])

    def test_yaml_round_trip(self, tmp_path):
        topo = Topology(nodes=4, ranks_per_node=2, inter_bandwidth=12.5e9)
        topo.to_yaml(tmp_path / "cluster.yaml")
        assert Topology.from_yaml(tmp_path / "cluster.yaml") == topo

    def test_describe(self):
        text = Topology(nodes=2, ranks_per_node=4).describe()
        assert "2x4" in text and "8 ranks" in text


# ---------------------------------------------------------------------------
# Property battery: every collective, every cluster shape, ws 2-8
# ---------------------------------------------------------------------------

@st.composite
def _clusters(draw):
    """(Topology, world_size) with 2 <= world_size <= min(8, capacity)."""
    nodes = draw(st.integers(min_value=1, max_value=4))
    ranks_per_node = draw(st.integers(min_value=1, max_value=4))
    if nodes * ranks_per_node < 2:
        nodes, ranks_per_node = 2, 1
    ws = draw(st.integers(min_value=2, max_value=min(8, nodes * ranks_per_node)))
    return Topology(nodes=nodes, ranks_per_node=ranks_per_node), ws


def _closed_form(topo: Topology, op: str, nbytes: float, ws: int) -> dict:
    """The documented 2D algebra, re-derived independently of the code."""
    occupied = math.ceil(ws / topo.ranks_per_node)
    per_group = min(ws, topo.ranks_per_node)
    f_i = (per_group - 1) / per_group
    f_n = (occupied - 1) / occupied
    if op == "all_reduce":
        return {"intra": 2 * f_i * nbytes, "inter": 2 * f_n * nbytes / per_group}
    if op in ("reduce_scatter", "all_gather"):
        return {"intra": f_i * nbytes, "inter": f_n * nbytes / per_group}
    return {"intra": f_i * nbytes, "inter": f_n * nbytes}


class TestCollectiveAlgebra:
    @settings(max_examples=120, deadline=None)
    @given(cluster=_clusters(),
           op=st.sampled_from(("all_reduce", "reduce_scatter", "all_gather",
                               "broadcast")),
           numel=st.integers(min_value=1, max_value=64))
    def test_collective_bytes_match_closed_form(self, cluster, op, numel):
        topo, ws = cluster
        nbytes = float(numel * 4)
        split = topo.collective_bytes(op, nbytes, ws)
        expected = _closed_form(topo, op, nbytes, ws)
        assert set(split) == set(LINK_CLASSES)
        for link_class in LINK_CLASSES:
            assert split[link_class] == pytest.approx(
                expected[link_class], rel=REL, abs=0.0
            )

    @settings(max_examples=60, deadline=None)
    @given(cluster=_clusters(),
           op=st.sampled_from(("all_reduce", "reduce_scatter", "all_gather",
                               "broadcast")),
           numel=st.integers(min_value=1, max_value=64))
    def test_degenerate_shapes_recover_the_flat_ring(self, cluster, op, numel):
        topo, ws = cluster
        nbytes = float(numel * 4)
        split = topo.collective_bytes(op, nbytes, ws)
        flat = (2.0 if op == "all_reduce" else 1.0) * (ws - 1) / ws * nbytes
        if topo.nodes == 1:
            assert split["inter"] == 0.0
            assert split["intra"] == pytest.approx(flat, rel=REL)
        if topo.ranks_per_node == 1:
            assert split["intra"] == 0.0
            assert split["inter"] == pytest.approx(flat, rel=REL)

    def test_world_size_one_is_free(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        for op in ("all_reduce", "reduce_scatter", "all_gather", "broadcast"):
            assert topo.collective_bytes(op, 4096.0, 1) == {"intra": 0.0, "inter": 0.0}

    def test_unknown_op_rejected(self):
        with pytest.raises(DistError):
            Topology(nodes=2, ranks_per_node=2).collective_bytes("gossip", 1.0, 4)


class TestHierCommBitwise:
    """HierComm == SimComm bitwise, per collective, across shapes."""

    @settings(max_examples=60, deadline=None)
    @given(cluster=_clusters(), shard=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_all_collectives_bitwise_and_accounted(self, cluster, shard, seed):
        topo, ws = cluster
        flat, hier = SimComm(ws), HierComm(ws, topo)
        rng = np.random.default_rng(seed)
        bufs = [rng.standard_normal(ws * shard).astype(np.float32)
                for _ in range(ws)]

        a = flat.all_reduce_mean([b.copy() for b in bufs])
        b = hier.all_reduce_mean([b.copy() for b in bufs])
        assert a.tobytes() == b.tobytes()

        for out_flat, out_hier in zip(
            flat.reduce_scatter_mean([b.copy() for b in bufs]),
            hier.reduce_scatter_mean([b.copy() for b in bufs]),
        ):
            assert out_flat.tobytes() == out_hier.tobytes()

        shards = [rng.standard_normal(shard).astype(np.float32) for _ in range(ws)]
        assert flat.all_gather(shards).tobytes() == hier.all_gather(shards).tobytes()

        root_buf = rng.standard_normal(shard).astype(np.float32)
        for out_flat, out_hier in zip(
            flat.broadcast(root_buf), hier.broadcast(root_buf)
        ):
            assert out_flat.tobytes() == out_hier.tobytes()

        # Per-link-class accounting: suffixed ops only, bytes equal to
        # the closed-form split of exactly what the flat comm charged.
        assert all("/" in op for op in hier.stats.bytes_by_op)
        for op, flat_bytes in flat.stats.bytes_by_op.items():
            raw = flat_bytes / ((2.0 if op == "all_reduce" else 1.0) * (ws - 1) / ws)
            split = topo.collective_bytes(op, raw, ws)
            for link_class in LINK_CLASSES:
                assert hier.stats.bytes_by_op[f"{op}/{link_class}"] == pytest.approx(
                    split[link_class], rel=REL, abs=0.0
                )
                assert (hier.stats.calls_by_op[f"{op}/{link_class}"]
                        == flat.stats.calls_by_op[op])

    def test_capacity_check(self):
        with pytest.raises(DistError):
            HierComm(5, Topology(nodes=2, ranks_per_node=2))
        with pytest.raises(DistError):
            HierComm(2, topology="2x2")

    def test_single_node_totals_match_flat(self):
        """A 1xR cluster charges the flat ring's bytes, all intra."""
        flat, hier = SimComm(4), HierComm(4, Topology(nodes=1, ranks_per_node=4))
        bufs = [np.ones(8, dtype=np.float32) for _ in range(4)]
        flat.all_reduce_mean(bufs)
        hier.all_reduce_mean(bufs)
        assert hier.stats.total_bytes() == flat.stats.total_bytes()
        assert hier.stats.bytes_by_op["all_reduce/inter"] == 0.0


# ---------------------------------------------------------------------------
# Trainer-level identity: flat == hierarchical, end to end
# ---------------------------------------------------------------------------

class TestTrainerBitwise:
    @pytest.mark.parametrize("shape", ["2x2", "4x1", "1x4"])
    def test_final_state_bitwise_equal_to_flat(self, tmp_path, shape):
        flat = Trainer(topo_config(tmp_path / "flat", topology=None))
        flat.train()
        hier = Trainer(
            topo_config(tmp_path / shape, topology=Topology.from_shape(shape))
        )
        hier.train()
        assert_trainers_bitwise(flat, hier)
        # The hierarchical run accounted every byte per link class.
        ops = hier.engine.comm.stats.bytes_by_op
        assert ops and all("/" in op for op in ops)

    def test_compiled_equals_interpreted_under_topology(self, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        interp = Trainer(topo_config(tmp_path / "i", topology=topo, compile=False))
        interp.train()
        compiled = Trainer(topo_config(tmp_path / "c", topology=topo, compile=True))
        compiled.train()
        assert_trainers_bitwise(interp, compiled)

    def test_live_bytes_match_planner(self, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        trainer = Trainer(topo_config(tmp_path, topology=topo))
        trainer.train()
        traffic = plan_step_traffic(
            get_config("tiny-untied"), world_size=4, topology=topo
        )
        live = trainer.engine.comm.stats.bytes_by_op
        for op in ("reduce_scatter", "all_gather"):
            for link_class in LINK_CLASSES:
                planned = 6 * traffic.link_bytes[op][link_class]
                assert live[f"{op}/{link_class}"] == pytest.approx(planned, rel=1e-6)

    def test_config_capacity_and_round_trip(self, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        with pytest.raises(ConfigError):
            topo_config(tmp_path, topology=topo, world_size=5)
        cfg = topo_config(tmp_path, topology=topo)
        assert TrainConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.resolved_topology == topo
        assert topo_config(tmp_path, topology=None).resolved_topology is None


@pytest.mark.skipif(not mp_available(),
                    reason=f"mp backend unavailable: {mp_unavailable_reason()}")
class TestTopologyMpBackend:
    def test_mp_hier_bitwise_equal_to_sim_hier(self, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        sim = Trainer(topo_config(tmp_path / "sim", topology=topo,
                                  comm_backend="sim"))
        sim.train()
        mp = Trainer(topo_config(tmp_path / "mp", topology=topo,
                                 comm_backend="mp"))
        try:
            mp.train()
            assert mp.engine.comm.backend == "mp"
            assert_states_equal(
                sim.engine.master_state_dict(), mp.engine.master_state_dict()
            )
            assert_states_equal(sim.model.state_dict(), mp.model.state_dict())
            assert (sim.engine.comm.stats.bytes_by_op
                    == mp.engine.comm.stats.bytes_by_op)
        finally:
            mp.close()


# ---------------------------------------------------------------------------
# Chaos under a topology: grow/shrink identity, node faults, link pricing
# ---------------------------------------------------------------------------

class TestChaosUnderTopology:
    @pytest.mark.parametrize("compile", [False, True])
    def test_grow_then_shrink_bitwise(self, tmp_path, compile):
        """2→3→2 chaos under 2x2 == clean reference at the final world."""
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(rank_join(6), rank_failure(10, 2)))
        cfg = topo_config(
            tmp_path / "chaos", topology=topo, world_size=2, total_steps=14,
            checkpoint_interval=4, compile=compile,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        timeline = result.fault_timeline
        assert timeline.grows == 1 and timeline.recoveries == 2

        recovery = [e for e in timeline.events if e["kind"] == "recovery"][-1]
        ref = Trainer(topo_config(
            tmp_path / "ref", topology=topo, world_size=2, total_steps=14,
            checkpoint_interval=4, compile=compile,
        ))
        source = supervisor.trainer.storage.root / recovery["source"]
        assert ref.resume_from(CheckpointPaths(source)) == recovery["resumed_from"]
        assert ref.train().interrupted_at is None
        assert_trainers_bitwise(supervisor.trainer, ref)

    def test_chaos_equals_flat_chaos_bitwise(self, tmp_path):
        """The same fault plan, flat vs hierarchical: identical final state."""
        plan = FaultPlan(events=(rank_failure(4, 1), rank_join(8)))
        flat = ChaosSupervisor(
            topo_config(tmp_path / "flat", topology=None, world_size=3,
                        total_steps=12, checkpoint_interval=4),
            plan,
        )
        assert flat.run().interrupted_at is None
        hier = ChaosSupervisor(
            topo_config(tmp_path / "2x2", topology=Topology(2, 2), world_size=3,
                        total_steps=12, checkpoint_interval=4),
            plan,
        )
        assert hier.run().interrupted_at is None
        assert_trainers_bitwise(flat.trainer, hier.trainer)

    def test_node_failure_expands_to_block(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(node_failure(6, 1),))
        events = plan.world_events(topo)
        assert len(events) == 2
        assert all(ev.kind == "rank_failure" for ev in events)
        # Both deaths target the node's first rank: contiguous
        # renumbering after each shrink walks the whole block out.
        assert [ev.rank for ev in events] == [2, 2]
        assert all(ev.node == 1 for ev in events)

    def test_node_failure_requires_topology(self):
        plan = FaultPlan(events=(node_failure(6, 1),))
        with pytest.raises(ConfigError, match="requires a topology"):
            plan.world_events()
        with pytest.raises(ConfigError):
            plan.validate(4, 12)

    def test_node_failure_validation(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        with pytest.raises(ConfigError):  # node out of range
            FaultPlan(events=(node_failure(6, 2),)).validate(4, 12, topology=topo)
        with pytest.raises(ConfigError):  # would leave no survivors
            FaultPlan(
                events=(node_failure(4, 0), node_failure(8, 1))
            ).validate(4, 12, topology=topo)
        with pytest.raises(ConfigError):  # world exceeds cluster capacity
            FaultPlan().validate(5, 12, topology=topo)

    def test_node_failure_live_and_planned(self, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(node_failure(6, 1),))
        cfg = topo_config(tmp_path, topology=topo, world_size=4,
                          total_steps=12, checkpoint_interval=3)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert supervisor.trainer.config.world_size == 2
        timeline = result.fault_timeline
        assert timeline.recoveries == 2

        cost = plan_fault_cost(
            get_config("tiny-untied"), plan, world_size=4, total_steps=12,
            checkpoint_interval=3, topology=topo,
        )
        assert cost.final_world_size == 2
        assert cost.lost_steps == timeline.lost_steps
        assert cost.topology == "2x2"
        assert abs(cost.goodput - result.goodput.goodput) <= 1e-6 * cost.goodput


class TestDegradedLinkValidation:
    """Satellite fix: links off the 2D edge set fail validation loudly."""

    def test_non_edge_rejected_under_topology(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(degraded_link(1, 3, 0.5, step=2),))
        with pytest.raises(ConfigError, match="not .*edge|edge"):
            plan.validate(4, 12, topology=topo)
        # Without a topology the legacy flat-ring behavior is preserved.
        plan.validate(4, 12)

    def test_out_of_range_endpoint_rejected(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(degraded_link(0, 2, 0.5, step=2),))
        with pytest.raises(ConfigError):
            plan.validate(2, 12, topology=topo)  # rank 2 never exists

    def test_post_shrink_dangling_link_rejected(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(
            rank_failure(4, 3),
            rank_failure(5, 2),
            # (0, 2) is a real leader-to-leader edge, but rank 2 is gone
            # by step 8 — under a topology that's a loud error, not a
            # silently ignored no-op fault.
            degraded_link(0, 2, 0.5, step=8),
        ))
        with pytest.raises(ConfigError, match="dangle"):
            plan.validate(4, 12, topology=topo)

    def test_link_valid_before_shrink_allowed(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        plan = FaultPlan(events=(
            degraded_link(0, 1, 0.5, step=2, duration=10),
            rank_failure(4, 3),
        ))
        plan.validate(4, 12, topology=topo)

    def test_valid_edges_accepted(self):
        topo = Topology(nodes=2, ranks_per_node=2)
        FaultPlan(events=(
            degraded_link(0, 1, 0.5, step=1),   # intra-node
            degraded_link(0, 2, 0.5, step=1),   # leader-to-leader
        )).validate(4, 12, topology=topo)


class TestChaosCommPricing:
    def test_per_link_class_seconds(self):
        """Each link class is priced at its own bandwidth."""
        topo = Topology(nodes=2, ranks_per_node=2,
                        intra_bandwidth=1e6, inter_bandwidth=1e3)
        comm = ChaosComm(HierComm(4, topo), FaultPlan())
        buf = np.ones(4096, dtype=np.float32)
        comm.all_reduce_mean([buf, buf, buf, buf])
        split = topo.collective_bytes("all_reduce", buf.nbytes, 4)
        stats = comm.stats
        assert stats.seconds_by_op["all_reduce/intra"] == pytest.approx(
            split["intra"] / 1e6, rel=REL
        )
        assert stats.seconds_by_op["all_reduce/inter"] == pytest.approx(
            split["inter"] / 1e3, rel=REL
        )

    def test_degraded_link_penalizes_only_its_class(self):
        topo = Topology(nodes=2, ranks_per_node=2,
                        intra_bandwidth=1e6, inter_bandwidth=1e6)
        plan = FaultPlan(events=(degraded_link(0, 1, 0.25, step=1),))  # intra
        comm = ChaosComm(HierComm(4, topo), plan)
        comm.set_step(1)
        buf = np.ones(4096, dtype=np.float32)
        comm.all_reduce_mean([buf, buf, buf, buf])
        split = topo.collective_bytes("all_reduce", buf.nbytes, 4)
        stats = comm.stats
        assert stats.seconds_by_op["all_reduce/intra"] == pytest.approx(
            split["intra"] / 1e6 * 4.0, rel=REL   # 1/0.25 slowdown
        )
        assert stats.seconds_by_op["all_reduce/inter"] == pytest.approx(
            split["inter"] / 1e6, rel=REL          # untouched
        )


# ---------------------------------------------------------------------------
# Placement-aware resharding
# ---------------------------------------------------------------------------

class TestReshardPlacement:
    @pytest.fixture(scope="class")
    def source_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("topo-reshard")
        trainer = Trainer(topo_config(root / "run", topology=None, world_size=4))
        trainer.train()
        return trainer.storage.root / "checkpoint-6"

    def test_topology_reshard_bitwise_equal_to_flat(self, source_run, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        flat = reshard_checkpoint(source_run, tmp_path / "flat", 2)
        hier = reshard_checkpoint(source_run, tmp_path / "hier", 2, topology=topo)
        for rank in range(2):
            assert (CheckpointPaths(tmp_path / "flat").shard(rank).read_bytes()
                    == CheckpointPaths(tmp_path / "hier").shard(rank).read_bytes())
        assert flat.topology is None and flat.intra_bytes == 0
        assert hier.topology == "2x2"
        assert hier.intra_bytes > 0 or hier.inter_bytes > 0
        assert "2x2" in hier.summary()

    def test_report_matches_closed_form_and_planner(self, source_run, tmp_path):
        topo = Topology(nodes=2, ranks_per_node=2)
        report = reshard_checkpoint(
            source_run, tmp_path / "out", 2, topology=topo
        )
        # Independent re-derivation of the group numels from the model
        # config — the same tailored grouping the checkpoint was trained
        # under.
        from repro.core.groups import tailored_group_specs
        from repro.nn.slots import parameter_shapes

        config = get_config("tiny-untied")
        shapes = parameter_shapes(config)
        numels = [
            sum(math.prod(shapes[name]) for name in spec.param_names)
            for spec in tailored_group_specs(config, 0.01)
        ]
        intra, inter = placement_transfer_bytes(numels, 4, 2, topo)
        assert (report.intra_bytes, report.inter_bytes) == (intra, inter)

        plan = plan_reshard_cost(
            get_config("tiny-untied"), source_world_size=4,
            target_world_size=2, topology=topo,
        )
        assert (plan.intra_bytes, plan.inter_bytes) == (intra, inter)
        assert plan.intra_seconds == pytest.approx(intra / topo.intra_bandwidth)
        assert plan.inter_seconds == pytest.approx(inter / topo.inter_bandwidth)
        assert plan.topology == "2x2"

    def test_capacity_checked(self, source_run, tmp_path):
        from repro.util.errors import ReshardError

        with pytest.raises(ReshardError):
            reshard_checkpoint(
                source_run, tmp_path / "out", 2,
                topology=Topology(nodes=1, ranks_per_node=2),
            )
        with pytest.raises(ReshardError):
            placement_transfer_bytes([8], 4, 2, Topology(nodes=1, ranks_per_node=2))

    def test_intra_preferred_when_overlap_allows(self):
        """All-intra moves when source and target share every node."""
        topo = Topology(nodes=1, ranks_per_node=4)
        intra, inter = placement_transfer_bytes([64, 32], 4, 2, topo)
        assert inter == 0 and intra > 0
