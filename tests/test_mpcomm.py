"""Process-pool backend: bitwise parity with the sequential backend.

The contract under test is absolute: ``comm_backend="mp"`` forks one
long-lived worker per rank over shared memory and must produce byte-for-
byte the same losses, master weights, quantized parameters, and
optimizer moments as the sequential ``sim`` backend — across world
sizes, schedulers, tied/untied models, compiled/interpreted backward,
rank death, and resume.  Anything short of array_equal is a bug, never
tolerance noise.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np
import pytest

from repro.core.groups import tailored_param_groups
from repro.dist import (
    MpComm,
    ZeroStage3Engine,
    mp_available,
    mp_unavailable_reason,
    mpcomm,
)
from repro.dist.faults import FaultPlan, rank_failure, rank_join
from repro.nn import build_model
from repro.train import ChaosSupervisor, TrainConfig, Trainer
from repro.util.errors import ConfigError, DistError

pytestmark = pytest.mark.skipif(
    not mp_available(), reason=f"mp backend unavailable: {mp_unavailable_reason()}"
)

SHM_DIR = Path("/dev/shm")


def shm_segments() -> set[str]:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.glob(f"{mpcomm.SEGMENT_PREFIX}-*")}


def mp_config(tmp_path, name: str, backend: str, **overrides) -> TrainConfig:
    base = dict(
        model="tiny-untied", task="cpt", total_steps=6,
        checkpoint_strategy="full", checkpoint_interval=3,
        output_dir=str(tmp_path / name), world_size=2,
        micro_batch_size=2, grad_accum_steps=2, seq_len=32,
        log_every=2, comm_backend=backend,
    )
    base.update(overrides)
    return TrainConfig(**base)


def assert_states_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


def losses_of(trainer: Trainer) -> list[float]:
    return [e["loss"] for e in trainer.state.log_history if "loss" in e]


def run_digest(trainer: Trainer) -> str:
    """SHA-256 over masters + quantized weights, order-stable."""
    h = hashlib.sha256()
    for name, arr in sorted(trainer.engine.master_state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    for name, arr in sorted(trainer.model.state_dict().items()):
        h.update(name.encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def assert_trainers_equal(sim: Trainer, mp: Trainer) -> None:
    assert losses_of(sim) == losses_of(mp)
    assert_states_equal(sim.engine.master_state_dict(), mp.engine.master_state_dict())
    assert_states_equal(sim.model.state_dict(), mp.model.state_dict())
    for rank in range(sim.engine.world_size):
        assert_rank_shards_equal(sim.engine, mp.engine, rank)


def assert_rank_shards_equal(eng_a: ZeroStage3Engine, eng_b: ZeroStage3Engine, rank: int) -> None:
    a, b = eng_a.rank_state_dict(rank), eng_b.rank_state_dict(rank)
    assert set(a["fp32_flat_groups"]) == set(b["fp32_flat_groups"])
    for g, flat in a["fp32_flat_groups"].items():
        np.testing.assert_array_equal(flat, b["fp32_flat_groups"][g], err_msg=f"group {g}")
        assert a["state"][g]["step"] == b["state"][g]["step"]
        np.testing.assert_array_equal(a["state"][g]["exp_avg"], b["state"][g]["exp_avg"])
        np.testing.assert_array_equal(a["state"][g]["exp_avg_sq"], b["state"][g]["exp_avg_sq"])


# ---------------------------------------------------------------------------
# Bitwise parity: mp workers == sequential loop
# ---------------------------------------------------------------------------

class TestBitwiseParity:
    @pytest.mark.parametrize("world_size", [2, 4])
    @pytest.mark.parametrize("scheduler", ["warmup_cosine", "constant"])
    def test_matches_sequential(self, tmp_path, world_size, scheduler):
        overrides = dict(world_size=world_size, scheduler=scheduler)
        sim = Trainer(mp_config(tmp_path, "sim", "sim", **overrides))
        sim_result = sim.train()
        mp = Trainer(mp_config(tmp_path, "mp", "mp", **overrides))
        try:
            mp_result = mp.train()
            assert mp_result.final_step == sim_result.final_step
            assert mp_result.final_train_loss == sim_result.final_train_loss
            # Collectives run through the same ring model in both modes,
            # so the simulated traffic record is identical too.
            assert mp_result.comm_traffic == sim_result.comm_traffic
            assert_trainers_equal(sim, mp)
        finally:
            mp.close()

    @pytest.mark.parametrize("compile", [False, True])
    def test_tied_model_matches_sequential(self, tmp_path, compile):
        # Tied embeddings are the hard case: the embedding weight receives
        # two gradient contributions per backward (input embedding + logit
        # projection), and sequential accumulation interleaves them across
        # micro-batches.  The worker-side gradient tap ships every
        # contribution individually so the parent can replay the exact
        # stream; this test pins that path, interpreted and compiled.
        overrides = dict(model="tiny-tied", compile=compile)
        sim = Trainer(mp_config(tmp_path, "sim", "sim", **overrides))
        sim.train()
        mp = Trainer(mp_config(tmp_path, "mp", "mp", **overrides))
        try:
            mp.train()
            assert_trainers_equal(sim, mp)
        finally:
            mp.close()

    def test_compiled_untied_matches_sequential(self, tmp_path):
        # Workers replay a private (non-donating) backward tape; the
        # compiled worker bits must still equal the sequential bits.
        sim = Trainer(mp_config(tmp_path, "sim", "sim", compile=True))
        sim.train()
        mp = Trainer(mp_config(tmp_path, "mp", "mp", compile=True))
        try:
            mp.train()
            assert_trainers_equal(sim, mp)
        finally:
            mp.close()

    def test_resume_matches_uninterrupted(self, tmp_path):
        # mp run interrupted at the mid-run checkpoint and resumed by a
        # fresh mp trainer == one uninterrupted sequential run.
        sim = Trainer(mp_config(tmp_path, "sim", "sim"))
        sim.train()

        first = Trainer(mp_config(tmp_path, "mp", "mp"))
        try:
            first.train(until_step=3)
        finally:
            first.close()
        resumed = Trainer(mp_config(tmp_path, "mp", "mp"))
        try:
            assert resumed.resume_latest() == 3
            resumed.train()
            assert_trainers_equal(sim, resumed)
        finally:
            resumed.close()


# ---------------------------------------------------------------------------
# Chaos: rank death under mp == elastic shrink under sim
# ---------------------------------------------------------------------------

class TestChaosParity:
    def test_rank_death_matches_sequential(self, tmp_path):
        before = shm_segments()
        plan = FaultPlan(events=(rank_failure(4, 2),))
        overrides = dict(world_size=3, total_steps=8, checkpoint_interval=2)

        sim_sup = ChaosSupervisor(mp_config(tmp_path, "sim", "sim", **overrides), plan)
        sim_result = sim_sup.run()
        mp_sup = ChaosSupervisor(mp_config(tmp_path, "mp", "mp", **overrides), plan)
        try:
            mp_result = mp_sup.run()
            assert mp_result.final_step == sim_result.final_step == 8
            assert mp_result.fault_timeline.recoveries == 1
            assert mp_result.final_train_loss == sim_result.final_train_loss
            assert mp_result.comm_traffic == sim_result.comm_traffic
            assert_states_equal(
                sim_sup.trainer.engine.master_state_dict(),
                mp_sup.trainer.engine.master_state_dict(),
            )
            assert_states_equal(
                sim_sup.trainer.model.state_dict(), mp_sup.trainer.model.state_dict()
            )
        finally:
            mp_sup.trainer.close()
        # Every segment this battery created — including those of the
        # pre-shrink world whose worker was SIGKILLed mid-step — must be
        # unlinked by now.  Pre-existing segments (e.g. a still-open
        # session fixture under the mp CI leg) are excluded.
        assert shm_segments() - before == set()

    @pytest.mark.parametrize("compile", [False, True])
    @pytest.mark.parametrize(
        "trajectory",
        [
            ("2-3-2", 2, (rank_join(3), rank_failure(6, 2))),
            ("4-3-4", 4, (rank_failure(3, 3), rank_join(6))),
        ],
        ids=lambda t: t[0] if isinstance(t, tuple) else t,
    )
    def test_grow_matches_sequential(self, tmp_path, trajectory, compile):
        """Grow-then-shrink (and shrink-then-grow) parity: the mp pools
        torn down and rebuilt at each world-size change land bitwise on
        the sequential backend — and unlink every segment, including the
        larger grown world's arena."""
        before = shm_segments()
        _, world_size, events = trajectory
        plan = FaultPlan(events=events)
        overrides = dict(
            world_size=world_size, total_steps=8, checkpoint_interval=2,
            compile=compile,
        )
        sim_sup = ChaosSupervisor(mp_config(tmp_path, "sim", "sim", **overrides), plan)
        sim_result = sim_sup.run()
        mp_sup = ChaosSupervisor(mp_config(tmp_path, "mp", "mp", **overrides), plan)
        try:
            mp_result = mp_sup.run()
            assert mp_result.final_step == sim_result.final_step == 8
            assert mp_result.fault_timeline.recoveries == 2
            assert mp_result.fault_timeline.grows == 1
            assert mp_sup.trainer.config.world_size == world_size
            assert mp_result.final_train_loss == sim_result.final_train_loss
            assert mp_result.comm_traffic == sim_result.comm_traffic
            # Step/stall accounting is bitwise; recovery I/O seconds sum
            # storage charges in backend-dependent order, so approx.
            sim_gp, mp_gp = sim_result.goodput, mp_result.goodput
            assert mp_gp.useful_steps == sim_gp.useful_steps
            assert mp_gp.lost_steps == sim_gp.lost_steps
            assert mp_gp.stall_seconds == sim_gp.stall_seconds
            assert mp_gp.recovery_seconds == pytest.approx(
                sim_gp.recovery_seconds, rel=1e-6
            )
            assert_states_equal(
                sim_sup.trainer.engine.master_state_dict(),
                mp_sup.trainer.engine.master_state_dict(),
            )
            assert_states_equal(
                sim_sup.trainer.model.state_dict(), mp_sup.trainer.model.state_dict()
            )
        finally:
            mp_sup.trainer.close()
        assert shm_segments() - before == set()

    def test_rank_death_mid_dispatch_then_rejoin(self, tmp_path):
        """A worker SIGKILLed outside the supervisor's schedule surfaces
        as a DistError from the next fwd_bwd dispatch; rebuilding the
        pool and resuming recovers bitwise and leaks no segments."""
        import os
        import signal

        before = shm_segments()
        sim = Trainer(mp_config(tmp_path, "sim", "sim"))
        sim.train()

        crashed = Trainer(mp_config(tmp_path, "mp", "mp"))
        try:
            crashed.train(until_step=3)
            # Hard-kill rank 1's worker behind the comm's back: the next
            # collective step must fail loudly mid-dispatch, not hang.
            proc = crashed.engine._mp._state.procs[1]
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=30)
            # Depending on when the kill lands relative to the pipe
            # buffer, the death surfaces at send time or at reply time —
            # both must be the typed error, never a raw BrokenPipeError.
            with pytest.raises(DistError, match="rank 1 worker died"):
                crashed.train()
        finally:
            crashed.close()

        rejoined = Trainer(mp_config(tmp_path, "mp", "mp"))
        try:
            assert rejoined.resume_latest() == 3
            rejoined.train()
            assert_trainers_equal(sim, rejoined)
        finally:
            rejoined.close()
        assert shm_segments() - before == set()


# ---------------------------------------------------------------------------
# Determinism canary
# ---------------------------------------------------------------------------

class TestDeterminism:
    def test_repeated_runs_identical(self, tmp_path):
        digests = set()
        for i in range(5):
            trainer = Trainer(
                mp_config(tmp_path, f"run{i}", "mp", total_steps=3, log_every=1)
            )
            try:
                trainer.train()
                digests.add(run_digest(trainer))
            finally:
                trainer.close()
        assert len(digests) == 1


# ---------------------------------------------------------------------------
# Engine-level: partial-group steps through the default rank program
# ---------------------------------------------------------------------------

class TestEngineLevel:
    def _engine(self, config, backend):
        model = build_model(config, seed=1)
        groups = tailored_param_groups(model, config, 0.01)
        engine = ZeroStage3Engine(
            model, config, groups, world_size=2, lr=1e-3, comm_backend=backend
        )
        return model, engine

    def test_partial_group_step_matches_sequential(self, untied_config):
        # Grads land on only a prefix of the parameters, so some groups
        # skip their optimizer step entirely; the mp workers must step
        # (and re-quantize) exactly the groups the sequential engine does.
        model_s, eng_s = self._engine(untied_config, "sim")
        model_m, eng_m = self._engine(untied_config, "mp")
        try:
            for step, fraction in ((0, 1.0), (1, 0.4), (2, 1.0)):
                rng = np.random.default_rng(100 + step)
                params_s = list(model_s.parameters())
                params_m = list(model_m.parameters())
                keep = max(1, int(len(params_s) * fraction))
                for i, (ps, pm) in enumerate(zip(params_s, params_m)):
                    g = (
                        rng.standard_normal(ps.data.shape).astype(np.float32)
                        if i < keep
                        else None
                    )
                    ps.grad = g
                    pm.grad = None if g is None else g.copy()
                eng_s.step()
                eng_m.step()
            assert_states_equal(eng_s.master_state_dict(), eng_m.master_state_dict())
            assert_states_equal(model_s.state_dict(), model_m.state_dict())
            for rank in range(2):
                assert_rank_shards_equal(eng_s, eng_m, rank)
        finally:
            eng_m.close()


# ---------------------------------------------------------------------------
# Config plumbing and error surfaces
# ---------------------------------------------------------------------------

class TestConfig:
    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError):
            TrainConfig(comm_backend="tcp")

    def test_mp_requires_fused(self, untied_config):
        model = build_model(untied_config, seed=1)
        groups = tailored_param_groups(model, untied_config, 0.01)
        with pytest.raises(ConfigError, match="fused"):
            ZeroStage3Engine(
                model, untied_config, groups, world_size=2,
                comm_backend="mp", fused=False,
            )

    def test_auto_resolves_from_env(self, monkeypatch):
        cfg = TrainConfig(comm_backend="auto")
        monkeypatch.delenv("REPRO_COMM_BACKEND", raising=False)
        assert cfg.resolved_comm_backend == "sim"
        monkeypatch.setenv("REPRO_COMM_BACKEND", "mp")
        assert cfg.resolved_comm_backend == "mp"
        # Explicit backends ignore the env.
        assert TrainConfig(comm_backend="sim").resolved_comm_backend == "sim"
        monkeypatch.setenv("REPRO_COMM_BACKEND", "smoke-signals")
        with pytest.raises(ConfigError):
            cfg.resolved_comm_backend


class TestMpCommApi:
    def test_dispatch_before_start(self):
        comm = MpComm(2)
        with pytest.raises(DistError, match="before start"):
            comm.dispatch("noop")

    def test_create_arena_after_start_rejected(self):
        comm = MpComm(2)
        comm.create_arena(64, tag="probe")
        try:
            comm.start(lambda rank, barrier: _RankEcho(rank))
            with pytest.raises(DistError, match="after start"):
                comm.create_arena(64)
            assert comm.dispatch("ping") == [0, 1]
        finally:
            comm.close()
        assert not comm.started

    def test_kill_rank_out_of_range(self):
        comm = MpComm(2)
        try:
            with pytest.raises(DistError, match="out of range"):
                comm.kill_rank(5)
        finally:
            comm.close()

    def test_workers_spawned_counter(self, tmp_path):
        before = mpcomm.WORKERS_SPAWNED
        trainer = Trainer(mp_config(tmp_path, "count", "mp", total_steps=2))
        try:
            trainer.train()
        finally:
            trainer.close()
        assert mpcomm.WORKERS_SPAWNED >= before + 2

    def test_close_unlinks_segments(self):
        before = shm_segments()
        comm = MpComm(2)
        arena = comm.create_arena(1024, tag="lifecycle")
        view = arena.alloc((8,))
        view[:] = 7.0
        assert arena.name in shm_segments() - before
        comm.start(lambda rank, barrier: _RankEcho(rank))
        comm.close()
        assert shm_segments() - before == set()


class _RankEcho:
    """Minimal worker program: answers ``ping`` with its own rank."""

    def __init__(self, rank: int) -> None:
        self.rank = rank

    def ping(self) -> int:
        return self.rank
