"""The shared benchmark harness (analytic paths only — pipelines are
exercised by benchmarks/)."""

from __future__ import annotations

import pytest

from repro.bench import PAPER_SETTINGS, paper_scale_overhead


class TestPaperScaleOverhead:
    def test_settings_match_paper_section_5_1(self):
        # §5.1: Qwen SFT saves every 50 steps, Llama CPT every 100.
        assert PAPER_SETTINGS["qwen-sft"]["interval"] == 50
        assert PAPER_SETTINGS["llama-cpt"]["interval"] == 100
        assert PAPER_SETTINGS["qwen-sft"]["model"] == "qwen2.5-7b"
        assert PAPER_SETTINGS["llama-cpt"]["model"] == "llama3.1-8b"

    def test_full_llama_matches_table3_size(self):
        row = paper_scale_overhead("llama-cpt", "full")
        assert row["events"] == 16
        # Paper Table 3: 1799.52 GB (decimal); arithmetic must land close.
        assert abs(row["total_gb"] - 1799.52) < 30

    def test_full_qwen_matches_table3_size(self):
        row = paper_scale_overhead("qwen-sft", "full")
        assert row["events"] == 17
        assert abs(row["total_gb"] - 1811.52) < 30

    def test_parity_is_half_of_full(self):
        full = paper_scale_overhead("llama-cpt", "full")
        parity = paper_scale_overhead("llama-cpt", "parity", initial_full=False)
        assert full["total_bytes"] / parity["total_bytes"] == pytest.approx(2.0, abs=0.05)

    def test_filtered_reduction_in_paper_band(self):
        full = paper_scale_overhead("llama-cpt", "full")
        filt = paper_scale_overhead("llama-cpt", "filtered", initial_full=False)
        ratio = full["total_bytes"] / filt["total_bytes"]
        assert 3.5 < ratio < 5.0  # paper: 4.28x

    def test_time_fraction_ordering(self):
        full = paper_scale_overhead("qwen-sft", "full")
        parity = paper_scale_overhead("qwen-sft", "parity", initial_full=False)
        filt = paper_scale_overhead("qwen-sft", "filtered", initial_full=False)
        assert filt["ckpt_fraction"] < parity["ckpt_fraction"] < full["ckpt_fraction"]
        # Qwen's SFT shape is checkpoint-heavy, as in the paper (20.63%).
        assert full["ckpt_fraction"] > 0.15

    def test_unknown_setting_raises(self):
        with pytest.raises(KeyError):
            paper_scale_overhead("gpt-pretrain", "full")
