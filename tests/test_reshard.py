"""The elastic resharding engine: N→M bitwise validity and bounded memory.

The contract under test (ISSUE 3 tentpole): ``repro.dist.reshard``
converts a complete ``SHARD_FORMAT_VERSION`` checkpoint written at world
size N into a bitwise-valid checkpoint at world size M, for any N, M ≥ 1:

* chains compose — N→M→1 equals the direct N→1 consolidation byte for
  byte, for every strategy's trail merged into a complete checkpoint;
* round trips are lossless — N→M→N reproduces the original shard files
  exactly;
* the streaming engine equals the materializing reference path bitwise
  while allocating strictly less at peak;
* corruption in any source group is rejected via its per-group CRC.
"""

from __future__ import annotations

import itertools
import tracemalloc

import numpy as np
import pytest

from repro.core import LLMTailor, MergeOptions, recipe_from_run, verify_checkpoint
from repro.dist import GroupPartition, reshard_checkpoint, reshard_state_dicts
from repro.io import CheckpointPaths, Storage, save_checkpoint, load_checkpoint
from repro.io.blobfile import read_blob, write_blob
from repro.nn import get_config
from repro.strategies import build_strategy, plan_reshard_cost
from repro.util.errors import CheckpointError, CheckpointFormatError, ReshardError

from conftest import make_engine, train_steps

WORLD_SIZES = [1, 2, 3, 4]
STRATEGIES = ["parity", "magnitude", "filtered", "full"]


def _build_complete_checkpoint(root, config, strategy_name: str, world_size: int):
    """Train under a strategy, then merge the trail into a complete ckpt.

    The merged output is the realistic reshard input: its shards carry
    the merge engine's extra payload keys (``global_step``,
    ``merged_by``), which the resharder must transport verbatim.
    """
    model, engine = make_engine(config, world_size=world_size)
    storage = Storage(root / f"run-{strategy_name}-ws{world_size}")
    strategy = build_strategy(strategy_name, config, interval=1)
    for step in range(1, 4):
        train_steps(model, engine, config, 1, seed=step)
        slots = strategy.plan_step(step, model=model)
        assert slots is not None
        save_checkpoint(
            storage, step=step, model=model, config=config, engine=engine,
            trainer_state={"global_step": step}, slots=slots,
            strategy=strategy_name,
        )
    recipe = recipe_from_run(storage.root)
    recipe.options = MergeOptions(verify=False)
    result = LLMTailor(recipe).merge(output=root / f"complete-{strategy_name}-ws{world_size}")
    return result.output


@pytest.fixture(scope="module")
def ckpt_factory(tmp_path_factory):
    """Cached (strategy, world_size) -> complete CheckpointPaths."""
    root = tmp_path_factory.mktemp("reshard-sources")
    config = get_config("tiny-untied")
    cache: dict[tuple[str, int], CheckpointPaths] = {}

    def get(strategy: str, world_size: int) -> CheckpointPaths:
        key = (strategy, world_size)
        if key not in cache:
            cache[key] = _build_complete_checkpoint(root, config, strategy, world_size)
        return cache[key]

    return get


def _shards_bytes(paths: CheckpointPaths, world_size: int) -> list[bytes]:
    return [paths.shard(r).read_bytes() for r in range(world_size)]


# ---------------------------------------------------------------------------
# Bitwise contracts
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("world_size", WORLD_SIZES)
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_chain_via_m_equals_direct_consolidation(
    ckpt_factory, tmp_path, strategy, world_size
):
    """N→3→1 must equal the direct N→1 consolidation byte for byte."""
    src = ckpt_factory(strategy, world_size)
    direct = reshard_checkpoint(src, tmp_path / "direct1", 1)
    mid = reshard_checkpoint(src, tmp_path / "mid3", 3)
    chained = reshard_checkpoint(tmp_path / "mid3", tmp_path / "chain1", 1)
    assert direct.target_world_size == chained.target_world_size == 1
    assert mid.target_world_size == 3
    assert (
        CheckpointPaths(tmp_path / "direct1").shard(0).read_bytes()
        == CheckpointPaths(tmp_path / "chain1").shard(0).read_bytes()
    ), f"chain differs from direct ({strategy}, ws={world_size})"
    assert (
        CheckpointPaths(tmp_path / "direct1").weights.read_bytes()
        == CheckpointPaths(tmp_path / "chain1").weights.read_bytes()
    )


@pytest.mark.parametrize("target", WORLD_SIZES)
@pytest.mark.parametrize("source", WORLD_SIZES)
def test_roundtrip_reproduces_original_shards(ckpt_factory, tmp_path, source, target):
    """N→M→N reproduces the original shard files bitwise (acceptance)."""
    src = ckpt_factory("full", source)
    original = _shards_bytes(src, source)
    reshard_checkpoint(src, tmp_path / "mid", target)
    reshard_checkpoint(tmp_path / "mid", tmp_path / "back", source)
    back = CheckpointPaths(tmp_path / "back")
    assert _shards_bytes(back, source) == original, (
        f"{source}->{target}->{source} round trip is not bitwise"
    )
    assert back.weights.read_bytes() == src.weights.read_bytes()
    assert int(back.read_manifest()["world_size"]) == source


@pytest.mark.parametrize("target", [1, 3])
def test_stream_equals_materializing_engine(ckpt_factory, tmp_path, target):
    """Both engines must emit identical bytes at any target world size."""
    src = ckpt_factory("parity", 2)
    reshard_checkpoint(src, tmp_path / "s", target, stream=True, workers=3)
    reshard_checkpoint(src, tmp_path / "m", target, stream=False)
    assert _shards_bytes(CheckpointPaths(tmp_path / "s"), target) == _shards_bytes(
        CheckpointPaths(tmp_path / "m"), target
    )


def test_resharded_checkpoint_verifies(ckpt_factory, tmp_path):
    """The output passes structural verification at its new world size."""
    src = ckpt_factory("full", 2)
    report = reshard_checkpoint(src, tmp_path / "v3", 3)
    # N + M - gcd(N, M) group transfers + 1 metadata pass over rank 0.
    assert report.files_loaded == (2 + 3 - 1) + 1
    verify = verify_checkpoint(tmp_path / "v3")
    assert verify.ok, verify.issues


# ---------------------------------------------------------------------------
# Memory bound
# ---------------------------------------------------------------------------

def test_stream_peak_memory_below_full_materialization(ckpt_factory, tmp_path):
    """Streaming must allocate strictly less at peak than materializing.

    The materializing path holds every source payload plus the gathered
    full master; the streaming path only ever holds one target shard
    plus one source shard's selected groups.
    """
    src = ckpt_factory("full", 4)

    def peak(tag: str, stream: bool) -> int:
        tracemalloc.start()
        try:
            reshard_checkpoint(src, tmp_path / f"mem-{tag}", 2, stream=stream)
            _, peak_bytes = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak_bytes

    materialize_peak = peak("mat", stream=False)
    stream_peak = peak("stream", stream=True)
    assert stream_peak < materialize_peak, (
        f"streaming peak {stream_peak} should undercut materializing "
        f"{materialize_peak}"
    )


# ---------------------------------------------------------------------------
# Corruption and misuse rejection
# ---------------------------------------------------------------------------

def test_corrupted_group_rejected(ckpt_factory, tmp_path):
    """A tampered group fails its per-group CRC even in a valid container."""
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim", 2)  # fresh private copy
    shard_path = CheckpointPaths(copy.output).shard(0)
    doc = read_blob(shard_path)
    g = next(iter(doc["fp32_flat_groups"]))
    doc["fp32_flat_groups"][g] = doc["fp32_flat_groups"][g] + 1.0
    write_blob(shard_path, doc)  # container CRC valid again
    with pytest.raises(ReshardError, match="CRC mismatch for group"):
        reshard_checkpoint(copy.output, tmp_path / "out", 1)


def test_bit_rot_rejected(ckpt_factory, tmp_path):
    """Raw bit flips fail the container checks on either engine."""
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim2", 2)
    shard_path = CheckpointPaths(copy.output).shard(1)
    raw = bytearray(shard_path.read_bytes())
    raw[-3] ^= 0xFF
    shard_path.write_bytes(bytes(raw))
    with pytest.raises((CheckpointFormatError, ReshardError)):
        reshard_checkpoint(copy.output, tmp_path / "out-a", 1, stream=True)
    with pytest.raises((CheckpointFormatError, ReshardError)):
        reshard_checkpoint(copy.output, tmp_path / "out-b", 1, stream=False)


def test_step_disagreement_rejected(ckpt_factory, tmp_path):
    """Mixed-up shard files (diverging step counters) must not merge."""
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim3", 2)
    shard_path = CheckpointPaths(copy.output).shard(1)
    doc = read_blob(shard_path)
    g = next(iter(doc["state"]))
    doc["state"][g]["step"] = int(doc["state"][g]["step"]) + 7
    write_blob(shard_path, doc)
    with pytest.raises(ReshardError, match="step"):
        reshard_checkpoint(copy.output, tmp_path / "out", 1, stream=True)


def test_scheduler_staleness_does_not_break_roundtrip(tmp_path, untied_config):
    """Shards stay canonical when ranks' LR mirrors lag the reference.

    The scheduler advances the reference optimizer *after* a step;
    ranks >= 1 only pick the new LR up at the top of the next one.
    ``rank_state_dict`` must emit the reference hyperparams for every
    rank — otherwise N→M→N round trips of real trainer checkpoints
    would lose the per-rank staleness and stop being bitwise.
    """
    model, engine = make_engine(untied_config, world_size=2)
    train_steps(model, engine, untied_config, 1)
    # Simulate the post-step scheduler tick: only the reference moves.
    for group in engine.reference_optimizer.param_groups:
        group["lr"] *= 0.5
    assert engine.rank_state_dict(0)["hyperparams"] == engine.rank_state_dict(1)["hyperparams"]

    storage = Storage(tmp_path / "run")
    paths = save_checkpoint(
        storage, step=1, model=model, config=untied_config, engine=engine,
        trainer_state={}, strategy="full",
    )
    original = _shards_bytes(paths, 2)
    reshard_checkpoint(paths, tmp_path / "mid", 3)
    reshard_checkpoint(tmp_path / "mid", tmp_path / "back", 2)
    assert _shards_bytes(CheckpointPaths(tmp_path / "back"), 2) == original


def test_foreign_shard_geometry_rejected_by_both_engines(ckpt_factory, tmp_path):
    """A shard whose group geometry diverges from rank 0 must not merge.

    The header tamper leaves the per-group CRCs valid (they cover only
    the arrays), so this is exactly the case the cross-rank geometry
    check exists for — on the streaming path too.
    """
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim-geom", 2)
    shard_path = CheckpointPaths(copy.output).shard(1)
    doc = read_blob(shard_path)
    doc["groups"][0]["param_names"] = list(doc["groups"][0]["param_names"]) + ["ghost"]
    write_blob(shard_path, doc)
    with pytest.raises(ReshardError, match="geometry differs"):
        reshard_checkpoint(copy.output, tmp_path / "out-geom-s", 1, stream=True)
    with pytest.raises(ReshardError, match="geometry differs"):
        reshard_checkpoint(copy.output, tmp_path / "out-geom-m", 1, stream=False)


def test_aborted_reshard_leaves_no_complete_manifest(ckpt_factory, tmp_path):
    """A failed reshard must not leave a complete-marked output directory.

    The manifest is written last (save_checkpoint's discipline): resume
    tooling scanning for complete checkpoints must never pick up a
    directory whose shards were not all written.
    """
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim-abort", 2)
    CheckpointPaths(copy.output).shard(1).unlink()
    for stream in (True, False):
        out = tmp_path / f"out-abort-{stream}"
        with pytest.raises(ReshardError):
            reshard_checkpoint(copy.output, out, 3, stream=stream)
        assert not CheckpointPaths(out).manifest.exists()


def test_partial_checkpoint_rejected(tmp_path, untied_config):
    model, engine = make_engine(untied_config)
    storage = Storage(tmp_path / "run")
    train_steps(model, engine, untied_config, 1)
    paths = save_checkpoint(
        storage, step=1, model=model, config=untied_config, engine=engine,
        trainer_state={}, slots=["layers.0"], strategy="parity",
    )
    with pytest.raises(ReshardError, match="partial"):
        reshard_checkpoint(paths, tmp_path / "out", 2)


def test_in_place_reshard_rejected(ckpt_factory, tmp_path):
    """Resharding into the source directory would destroy it mid-read."""
    src = ckpt_factory("full", 2)
    copy = reshard_checkpoint(src, tmp_path / "victim-inplace", 2)
    with pytest.raises(ReshardError, match="in place"):
        reshard_checkpoint(copy.output, copy.output, 4)
    # The source must be untouched and still loadable.
    assert _shards_bytes(CheckpointPaths(copy.output), 2) == _shards_bytes(src, 2)


def test_output_reuse_cleans_stale_higher_ranks(ckpt_factory, tmp_path):
    """Shrinking into a reused output dir must not leave stale rank files."""
    src = ckpt_factory("full", 2)
    out = tmp_path / "reused"
    reshard_checkpoint(src, out, 4)
    reshard_checkpoint(src, out, 2)
    paths = CheckpointPaths(out)
    assert int(paths.read_manifest()["world_size"]) == 2
    assert sorted(p.name for p in paths.optim_dir.glob("*.blob")) == [
        paths.shard(0).name, paths.shard(1).name,
    ]
    assert _shards_bytes(paths, 2) == _shards_bytes(src, 2)


def test_checkpoint_named_output_rejects_step_conflict(ckpt_factory, tmp_path):
    """A ``checkpoint-<other-step>`` output name would misresolve shards.

    ``CheckpointPaths.step`` prefers the directory name over the
    manifest, so shards written under the source step's global_step dir
    would be unfindable afterwards — reject the name up front.  The
    matching name (and any non-checkpoint name) must still work.
    """
    src = ckpt_factory("full", 2)
    step = int(src.read_manifest()["step"])
    with pytest.raises(ReshardError, match="names step"):
        reshard_checkpoint(src, tmp_path / "checkpoint-999", 2)
    report = reshard_checkpoint(src, tmp_path / f"checkpoint-{step}", 2)
    assert verify_checkpoint(report.output).ok


def test_consume_drains_sources_without_changing_output(untied_config):
    """consume=True (the elastic reader's mode) must be bit-identical."""
    from repro.io.blobfile import encode

    model, engine = make_engine(untied_config, world_size=2)
    train_steps(model, engine, untied_config, 1)
    sources = [engine.rank_state_dict(r) for r in range(2)]
    kept = reshard_state_dicts([engine.rank_state_dict(r) for r in range(2)], 3)
    drained = reshard_state_dicts(sources, 3, consume=True)
    for a, b in zip(kept, drained):
        assert encode(a) == encode(b)
    assert all(not s["fp32_flat_groups"] for s in sources)


def test_bad_target_world_size_rejected(ckpt_factory, tmp_path):
    src = ckpt_factory("full", 2)
    with pytest.raises(ReshardError, match="world_size"):
        reshard_checkpoint(src, tmp_path / "out", 0)
    with pytest.raises(ReshardError):
        reshard_state_dicts([], 2)


# ---------------------------------------------------------------------------
# Engine and trainer wiring
# ---------------------------------------------------------------------------

def test_engine_load_with_peers_reshards(untied_config):
    """load_rank_state_dict accepts a mismatched shard when peers are given."""
    model, engine = make_engine(untied_config, world_size=2)
    train_steps(model, engine, untied_config, 2)
    sources = [engine.rank_state_dict(r) for r in range(2)]

    _, engine3 = make_engine(untied_config, world_size=3, seed=77)
    for rank in range(3):
        engine3.load_rank_state_dict(
            rank, sources[0], peers=sources, materialize=rank == 2
        )
    for name, value in engine.master_state_dict().items():
        np.testing.assert_array_equal(value, engine3.master_state_dict()[name])


def test_engine_load_mismatch_without_peers_raises(untied_config):
    model, engine = make_engine(untied_config, world_size=2)
    shard = engine.rank_state_dict(0)
    _, engine3 = make_engine(untied_config, world_size=3)
    with pytest.raises(CheckpointError, match="reshard"):
        engine3.load_rank_state_dict(0, shard)


def test_elastic_resume_preserves_training(tmp_path, untied_config):
    """A ws-3 checkpoint resumed at ws-2 continues with identical losses."""
    model, engine = make_engine(untied_config, world_size=3)
    train_steps(model, engine, untied_config, 2)
    storage = Storage(tmp_path / "run")
    paths = save_checkpoint(
        storage, step=2, model=model, config=untied_config, engine=engine,
        trainer_state={"global_step": 2}, strategy="full",
    )
    model2, engine2 = make_engine(untied_config, world_size=2, seed=55)
    load_checkpoint(paths, model=model2, config=untied_config, engine=engine2)
    reference = train_steps(model, engine, untied_config, 2, seed=9)
    resumed = train_steps(model2, engine2, untied_config, 2, seed=9)
    assert reference == resumed


# ---------------------------------------------------------------------------
# Partition interval math
# ---------------------------------------------------------------------------

def test_overlap_pair_count_matches_gcd_formula():
    """For boundary-aligned sizes the transfer count is N + M - gcd."""
    import math

    numel = 840  # divisible by every world size below: exact boundaries
    for n, m in itertools.product(range(1, 7), range(1, 7)):
        src = GroupPartition(numel, n)
        dst = GroupPartition(numel, m)
        pairs = sum(len(dst.overlapping_ranks(t, src)) for t in range(m))
        assert pairs == n + m - math.gcd(n, m), (n, m, pairs)


def test_master_bounds_cover_exactly():
    for numel, ws in [(7, 3), (10, 4), (5, 8), (0, 2), (12, 1)]:
        part = GroupPartition(numel, ws)
        covered = []
        for rank in range(ws):
            lo, hi = part.master_bounds(rank)
            assert 0 <= lo <= hi <= numel
            covered.extend(range(lo, hi))
        assert covered == list(range(numel))


def test_overlap_requires_same_numel():
    from repro.util.errors import DistError

    with pytest.raises(DistError, match="intersect"):
        GroupPartition(10, 2).overlapping_ranks(0, GroupPartition(11, 2))


# ---------------------------------------------------------------------------
# CLI and planner
# ---------------------------------------------------------------------------

def test_cli_reshard_roundtrip(ckpt_factory, tmp_path, capsys):
    from repro.cli import main

    src = ckpt_factory("full", 2)
    assert main([
        "reshard", str(src.dir), "-o", str(tmp_path / "m3"),
        "--target-world-size", "3", "--workers", "2",
    ]) == 0
    assert main([
        "reshard", str(tmp_path / "m3"), "-o", str(tmp_path / "back"),
        "-w", "2", "--no-stream",
    ]) == 0
    out = capsys.readouterr().out
    assert "world size           : 2 -> 3" in out
    assert _shards_bytes(CheckpointPaths(tmp_path / "back"), 2) == _shards_bytes(src, 2)


def test_plan_reshard_cost_model():
    import math

    config = get_config("llama3.1-8b")
    stream = plan_reshard_cost(
        config, source_world_size=8, target_world_size=3, workers=1, stream=True
    )
    mat = plan_reshard_cost(
        config, source_world_size=8, target_world_size=3, workers=1, stream=False
    )
    assert stream.loads == 8 + 3 - math.gcd(8, 3) + 1  # + metadata pass
    assert mat.loads == 8
    # The memory guarantee is the whole point of the streaming engine.
    assert stream.peak_bytes < mat.peak_bytes
    assert stream.bytes_written == mat.bytes_written
    for plan in (stream, mat):
        assert plan.seconds > 0
        assert plan.describe()["model"] == config.name
    # Peak memory is per concurrent worker: each in-flight target-rank
    # transfer holds its own target shard plus one source shard.
    fanned = plan_reshard_cost(
        config, source_world_size=8, target_world_size=3, workers=2, stream=True
    )
    assert fanned.peak_bytes == 2 * stream.peak_bytes
    assert plan_reshard_cost(
        config, source_world_size=8, target_world_size=3, workers=16, stream=True
    ).peak_bytes == 3 * stream.peak_bytes  # clamped to M transfers


def test_cli_plan_reshard_estimate(capsys):
    from repro.cli import main

    assert main([
        "plan", "llama3.1-8b", "full", "--world-size", "8",
        "--reshard-to", "2", "--stream", "--workers", "4",
    ]) == 0
    out = capsys.readouterr().out
    assert "reshard estimate (8 -> 2 ranks, stream, workers=4)" in out
    assert "peak memory" in out

    # The estimate's default engine must match `llmtailor reshard`'s
    # (stream), while the merge estimate stays serial by default.
    assert main([
        "plan", "llama3.1-8b", "full", "--world-size", "8",
        "--reshard-to", "2", "--merge-checkpoints", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "reshard estimate (8 -> 2 ranks, stream, workers=1)" in out
    assert "merge estimate (2 ckpts, per-checkpoint, serial, workers=1)" in out
