"""Crash-atomicity: interrupted writes must never corrupt checkpoints.

A checkpointing system's files are read after the writer died — that is
the whole point.  These tests simulate torn writes (leftover .tmp
files, truncated containers) and assert the readers either see the old
consistent state or fail loudly; silent corruption is the only losing
outcome.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.io import Storage, save_checkpoint, read_blob, write_blob
from repro.io.tensorfile import TensorFile, write_tensorfile
from repro.numerics import DType
from repro.util.errors import CheckpointFormatError
from repro.util.jsonio import read_json, write_json_atomic

from conftest import make_engine, train_steps


class TestTornWrites:
    def test_tensorfile_overwrite_is_atomic(self, tmp_path, rng):
        """Overwriting an existing tensor file leaves old or new, no mix."""
        path = tmp_path / "m.tsr"
        old = {"w": rng.standard_normal((8, 8)).astype(np.float32)}
        write_tensorfile(path, old, dtype=DType.FP32)
        # Simulate a crash mid-rewrite: a .tmp sibling exists but the
        # rename never happened.
        leftover = path.with_suffix(path.suffix + ".tmp")
        leftover.write_bytes(b"partial garbage")
        tf = TensorFile(path)  # reader ignores the leftover
        np.testing.assert_array_equal(tf.read("w"), old["w"])

    def test_blob_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "s.blob"
        write_blob(path, {"step": 1})
        path.with_suffix(path.suffix + ".tmp").write_bytes(b"\x00" * 10)
        assert read_blob(path) == {"step": 1}

    def test_json_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "state.json"
        write_json_atomic(path, {"global_step": 5})
        (tmp_path / "state.json.garbage.tmp").write_bytes(b"{")
        assert read_json(path) == {"global_step": 5}

    def test_truncated_tensorfile_fails_loudly(self, tmp_path, rng):
        path = tmp_path / "m.tsr"
        write_tensorfile(path, {"w": rng.standard_normal(64).astype(np.float32)})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointFormatError):
            TensorFile(path).read("w")

    def test_truncated_header_fails_loudly(self, tmp_path, rng):
        path = tmp_path / "m.tsr"
        write_tensorfile(path, {"w": rng.standard_normal(64).astype(np.float32)})
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises((CheckpointFormatError, Exception)):
            TensorFile(path)

    def test_truncated_blob_fails_loudly(self, tmp_path):
        path = tmp_path / "s.blob"
        write_blob(path, {"state": {0: np.zeros(100, dtype=np.float32)}})
        data = path.read_bytes()
        path.write_bytes(data[:-20])
        with pytest.raises(CheckpointFormatError):
            read_blob(path)


class TestCheckpointLevelAtomicity:
    def test_older_checkpoint_survives_newer_torn_one(self, tmp_path, untied_config):
        """A destroyed newer checkpoint leaves the older fully loadable."""
        from repro.core import LLMTailor
        from repro.io import CheckpointPaths, load_checkpoint

        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path / "run")
        train_steps(model, engine, untied_config, 1)
        save_checkpoint(storage, step=10, model=model, config=untied_config,
                        engine=engine, trainer_state={"global_step": 10})
        train_steps(model, engine, untied_config, 1)
        paths = save_checkpoint(storage, step=20, model=model, config=untied_config,
                                engine=engine, trainer_state={"global_step": 20})
        # Tear the newest checkpoint's weight file mid-write.
        data = paths.weights.read_bytes()
        paths.weights.write_bytes(data[: len(data) // 3])

        # The old checkpoint still loads cleanly...
        m2, e2 = make_engine(untied_config, seed=3)
        loaded = load_checkpoint(
            CheckpointPaths(storage.root / "checkpoint-10"),
            model=m2, config=untied_config, engine=e2,
        )
        assert loaded.step == 10
        # ...and merging from the torn one fails loudly, not silently.
        from repro.core import MergeRecipe
        from repro.util.errors import MergeError

        with pytest.raises((MergeError, CheckpointFormatError)):
            LLMTailor(
                MergeRecipe(base_checkpoint=storage.root / "checkpoint-20")
            ).merge(output=tmp_path / "m")
