"""Shared fixtures for the test suite.

Heavy artifacts (trained models with checkpoint trails) are built once
per session and reused read-only across tests.

The suite honors ``REPRO_COMM_BACKEND=mp`` (CI's ``tests-mp`` leg):
every trainer built from a default ``comm_backend="auto"`` config then
runs its ranks in forked shared-memory workers.  The session-finish
hook asserts workers actually spawned, so that leg can never silently
fall back to the sequential backend.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.groups import tailored_param_groups
from repro.dist import ZeroStage3Engine, mp_available, mp_unavailable_reason
from repro.io import Storage, save_checkpoint
from repro.nn import build_model, get_config
from repro.train import TrainConfig, Trainer

_MP_ENV = os.environ.get("REPRO_COMM_BACKEND", "") == "mp"


def pytest_collection_modifyitems(config, items):
    # An mp-gated session on a platform without fork/shared_memory skips
    # everything up front (clean skip, not a silent sequential run).
    if _MP_ENV and not mp_available():
        marker = pytest.mark.skip(
            reason=f"REPRO_COMM_BACKEND=mp but {mp_unavailable_reason()}"
        )
        for item in items:
            item.add_marker(marker)


def pytest_sessionfinish(session, exitstatus):
    if not _MP_ENV or not mp_available() or exitstatus != 0:
        return
    if session.testscollected < 50:
        return  # a hand-picked subset may legitimately never build a trainer
    from repro.dist import mpcomm

    if mpcomm.WORKERS_SPAWNED == 0:
        session.exitstatus = 1
        raise pytest.UsageError(
            "REPRO_COMM_BACKEND=mp was set but no worker process was ever "
            "forked — the mp leg silently ran the sequential backend"
        )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(params=["tiny-untied", "tiny-tied", "tiny-qwen"])
def tiny_config(request):
    return get_config(request.param)


@pytest.fixture
def untied_config():
    return get_config("tiny-untied")


@pytest.fixture
def tied_config():
    return get_config("tiny-tied")


def make_engine(config, *, world_size=2, seed=1, lr=1e-3, weight_decay=0.01):
    """Model + tailored-group ZeRO engine, ready to train."""
    model = build_model(config, seed=seed)
    groups = tailored_param_groups(model, config, weight_decay)
    engine = ZeroStage3Engine(model, config, groups, world_size=world_size, lr=lr)
    return model, engine


def train_steps(model, engine, config, n_steps, *, seed=0):
    """Run n quick optimizer steps on a fixed random batch; returns losses."""
    data_rng = np.random.default_rng(seed)
    ids = data_rng.integers(0, config.vocab_size, size=(2, 16))
    labels = np.roll(ids, -1, axis=1)
    losses = []
    for _ in range(n_steps):
        engine.zero_grad()
        loss = model.loss(ids, labels)
        loss.backward()
        engine.step()
        losses.append(loss.item())
    return losses


@pytest.fixture
def engine_pair(untied_config):
    return make_engine(untied_config)


@pytest.fixture
def checkpoint_run(tmp_path):
    """A short run with two partial (parity-style) checkpoints on disk.

    Returns (storage, model, engine, config, snapshots) where snapshots
    maps saved step -> master state dict at save time.
    """
    config = get_config("tiny-untied")
    model, engine = make_engine(config)
    storage = Storage(tmp_path / "run")
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    even = [f"layers.{i}" for i in range(L) if i % 2 == 0] + ["norm", "lm_head"]
    snapshots = {}

    train_steps(model, engine, config, 2)
    save_checkpoint(
        storage, step=100, model=model, config=config, engine=engine,
        trainer_state={"global_step": 100}, slots=odd, strategy="parity",
    )
    snapshots[100] = engine.master_state_dict()

    train_steps(model, engine, config, 2)
    save_checkpoint(
        storage, step=200, model=model, config=config, engine=engine,
        trainer_state={"global_step": 200}, slots=even, strategy="parity",
    )
    snapshots[200] = engine.master_state_dict()
    return storage, model, engine, config, snapshots


_TRAINED_CACHE: dict[str, tuple] = {}


@pytest.fixture(scope="session")
def session_tmp(tmp_path_factory):
    return tmp_path_factory.mktemp("shared-runs")


@pytest.fixture(scope="session")
def trained_run(session_tmp) -> tuple[Trainer, object, Path]:
    """A completed short CPT training run with full checkpoints (cached)."""
    key = "cpt-full"
    if key not in _TRAINED_CACHE:
        out = session_tmp / key
        cfg = TrainConfig(
            model="tiny-untied", task="cpt", total_steps=24,
            checkpoint_strategy="full", checkpoint_interval=8,
            output_dir=str(out), world_size=2, micro_batch_size=2,
            grad_accum_steps=1, seq_len=32, log_every=4,
        )
        trainer = Trainer(cfg)
        result = trainer.train()
        _TRAINED_CACHE[key] = (trainer, result, out)
    return _TRAINED_CACHE[key]
