"""Tokenizer, knowledge base, synthetic corpora, and datasets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.functional import IGNORE_INDEX
from repro.data import (
    CPTDataset,
    MedicalKB,
    SFTDataset,
    WordTokenizer,
    general_fact_sentences,
    medqa_like_pairs,
    pubmed_like_corpus,
)
from repro.util.errors import ConfigError


class TestTokenizer:
    def test_train_builds_frequency_ordered_vocab(self):
        tok = WordTokenizer.train(["b b b a a c", "a"], vocab_size=16)
        specials = len(WordTokenizer.SPECIALS)
        assert tok.vocab[specials] == "a"  # most frequent (4 > 3 > 1)
        assert tok.vocab[specials + 1] == "b"

    def test_encode_decode_roundtrip_known_words(self):
        tok = WordTokenizer.train(["the cat sat on the mat ."], vocab_size=32)
        text = "the cat sat ."
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_words_become_unk(self):
        tok = WordTokenizer.train(["alpha beta"], vocab_size=16)
        ids = tok.encode("alpha gamma")
        assert ids[1] == tok.unk_id

    def test_bos_eos_flags(self):
        tok = WordTokenizer.train(["x"], vocab_size=8)
        ids = tok.encode("x", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id

    def test_specials_skipped_in_decode(self):
        tok = WordTokenizer.train(["x"], vocab_size=8)
        ids = tok.encode("x", add_bos=True, add_eos=True)
        assert tok.decode(ids) == "x"

    def test_vocab_size_cap_respected(self):
        corpus = [" ".join(f"w{i}" for i in range(100))]
        tok = WordTokenizer.train(corpus, vocab_size=20)
        assert tok.vocab_size == 20

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ConfigError):
            WordTokenizer.train(["x"], vocab_size=3)

    def test_serialization_roundtrip(self):
        tok = WordTokenizer.train(["hello world"], vocab_size=10)
        tok2 = WordTokenizer.from_dict(tok.to_dict())
        assert tok2.vocab == tok.vocab

    def test_deterministic_for_same_corpus(self):
        corpus = ["z y x w", "w w y"]
        assert WordTokenizer.train(corpus, 16).vocab == WordTokenizer.train(corpus, 16).vocab

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta", "."]), min_size=1, max_size=30))
    def test_property_roundtrip_in_vocab_text(self, words):
        tok = WordTokenizer.train(["alpha beta gamma delta ."], vocab_size=16)
        text = " ".join(words)
        assert tok.decode(tok.encode(text)) == text


class TestKB:
    def test_deterministic_build(self):
        a, b = MedicalKB.build(7), MedicalKB.build(7)
        assert a.diseases == b.diseases and a.general == b.general

    def test_different_seeds_differ(self):
        assert MedicalKB.build(1).diseases != MedicalKB.build(2).diseases

    def test_sizes(self):
        kb = MedicalKB.build(1, n_diseases=10, n_general=6)
        assert len(kb.diseases) == 10 and len(kb.general) == 6

    def test_unique_disease_names(self):
        kb = MedicalKB.build(3)
        names = [d.name for d in kb.diseases]
        assert len(names) == len(set(names))

    def test_entity_words_cover_relations(self):
        kb = MedicalKB.build(5)
        words = set(kb.entity_words())
        assert all(d.treatment in words for d in kb.diseases)


class TestCorpora:
    def test_corpus_mentions_facts(self):
        kb = MedicalKB.build(1, n_diseases=4)
        docs = pubmed_like_corpus(kb, n_docs=50, seed=3)
        text = " ".join(docs)
        hits = sum(1 for d in kb.diseases if d.name in text and d.treatment in text)
        assert hits == len(kb.diseases)  # every fact appears somewhere

    def test_corpus_deterministic(self):
        kb = MedicalKB.build(1)
        assert pubmed_like_corpus(kb, n_docs=5, seed=3) == pubmed_like_corpus(kb, n_docs=5, seed=3)

    def test_qa_pairs_well_formed(self):
        kb = MedicalKB.build(1)
        pairs = medqa_like_pairs(kb, n_pairs=20, seed=2)
        assert len(pairs) == 20
        assert all(p.question.endswith("?") for p in pairs)
        assert all(p.answer.endswith(".") for p in pairs)

    def test_general_sentences_one_per_fact(self):
        kb = MedicalKB.build(1, n_general=9)
        assert len(general_fact_sentences(kb)) == 9


class TestCPTDataset:
    def _dataset(self, seq_len=16):
        kb = MedicalKB.build(1)
        docs = pubmed_like_corpus(kb, n_docs=30, seed=0)
        tok = WordTokenizer.train(docs, vocab_size=256)
        return CPTDataset(docs, tok, seq_len=seq_len, seed=0)

    def test_blocks_are_shifted_by_one(self):
        ds = self._dataset()
        batch = ds.block(0)
        np.testing.assert_array_equal(batch.input_ids[0, 1:], batch.labels[0, :-1])

    def test_stateless_batches_reproducible(self):
        ds = self._dataset()
        a = ds.batch_at_step(7, 4)
        b = ds.batch_at_step(7, 4)
        np.testing.assert_array_equal(a.input_ids, b.input_ids)

    def test_different_steps_differ(self):
        ds = self._dataset()
        a = ds.batch_at_step(7, 4)
        b = ds.batch_at_step(8, 4)
        assert not np.array_equal(a.input_ids, b.input_ids)

    def test_tags_give_independent_streams(self):
        ds = self._dataset()
        a = ds.batch_at_step(7, 4, tag="train/rank0")
        b = ds.batch_at_step(7, 4, tag="train/rank1")
        assert not np.array_equal(a.input_ids, b.input_ids)

    def test_eval_batches_fixed(self):
        ds = self._dataset()
        e1 = ds.eval_batches(2, 3)
        e2 = ds.eval_batches(2, 3)
        for a, b in zip(e1, e2):
            np.testing.assert_array_equal(a.input_ids, b.input_ids)

    def test_too_small_corpus_rejected(self):
        tok = WordTokenizer.train(["a b"], vocab_size=8)
        with pytest.raises(ConfigError):
            CPTDataset(["a b"], tok, seq_len=64)

    def test_shapes(self):
        ds = self._dataset(seq_len=24)
        batch = ds.batch_at_step(1, 3)
        assert batch.input_ids.shape == (3, 24) == batch.labels.shape


class TestSFTDataset:
    def _dataset(self, seq_len=32):
        kb = MedicalKB.build(1)
        pairs = medqa_like_pairs(kb, n_pairs=50, seed=0)
        texts = [p.question + " " + p.answer for p in pairs]
        tok = WordTokenizer.train(texts, vocab_size=256)
        return SFTDataset(pairs, tok, seq_len=seq_len, seed=0), tok

    def test_prompt_masked_answer_supervised(self):
        ds, tok = self._dataset()
        batch = ds.example(0)
        labels = batch.labels[0]
        supervised = labels != IGNORE_INDEX
        assert supervised.any(), "answer tokens must be supervised"
        # The first tokens (prompt) are masked.
        first_supervised = int(np.argmax(supervised))
        assert first_supervised > 0
        assert np.all(labels[:first_supervised] == IGNORE_INDEX)

    def test_padding_is_ignored(self):
        ds, tok = self._dataset(seq_len=40)
        batch = ds.example(0)
        pad_positions = batch.input_ids[0] == tok.pad_id
        if pad_positions.any():
            assert np.all(batch.labels[0][pad_positions] == IGNORE_INDEX)

    def test_num_target_tokens_positive(self):
        ds, _ = self._dataset()
        assert ds.batch_at_step(1, 4).num_target_tokens > 0

    def test_stateless_reproducibility(self):
        ds, _ = self._dataset()
        a = ds.batch_at_step(3, 4)
        b = ds.batch_at_step(3, 4)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_fixed_width(self):
        ds, _ = self._dataset(seq_len=32)
        batch = ds.batch_at_step(1, 5)
        assert batch.input_ids.shape == (5, 32)

    def test_empty_pairs_rejected(self):
        _, tok = self._dataset()
        with pytest.raises(ConfigError):
            SFTDataset([], tok, seq_len=16)
