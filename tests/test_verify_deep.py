"""Direct tests for checkpoint verification failure detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LLMTailor, MergeRecipe, verify_checkpoint
from repro.io import Storage, read_blob, save_checkpoint, write_blob, write_tensorfile
from repro.io.tensorfile import TensorFile

from conftest import make_engine, train_steps


@pytest.fixture
def merged_checkpoint(tmp_path, untied_config):
    """A freshly merged (identity) checkpoint to tamper with."""
    model, engine = make_engine(untied_config)
    storage = Storage(tmp_path / "run")
    train_steps(model, engine, untied_config, 2)
    save_checkpoint(storage, step=10, model=model, config=untied_config,
                    engine=engine, trainer_state={"global_step": 10})
    result = LLMTailor(
        MergeRecipe(base_checkpoint=storage.root / "checkpoint-10")
    ).merge(output=tmp_path / "merged")
    return result.output


class TestVerifyDetections:
    def test_clean_checkpoint_passes(self, merged_checkpoint):
        report = verify_checkpoint(merged_checkpoint.dir)
        assert report.ok
        assert report.checks_run > 5

    def test_missing_directory(self, tmp_path):
        report = verify_checkpoint(tmp_path / "ghost")
        assert not report.ok
        assert "does not exist" in report.issues[0]

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "bare").mkdir()
        report = verify_checkpoint(tmp_path / "bare")
        assert not report.ok

    def test_missing_weight_tensor_detected(self, merged_checkpoint, untied_config):
        tf = TensorFile(merged_checkpoint.weights)
        tensors = tf.read_all()
        tensors.pop("model.layers.2.mlp.up_proj.weight")
        write_tensorfile(merged_checkpoint.weights, tensors,
                         dtype=untied_config.storage_dtype)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert not report.ok
        assert any("missing tensors" in i for i in report.issues)

    def test_extra_weight_tensor_detected(self, merged_checkpoint, untied_config):
        tf = TensorFile(merged_checkpoint.weights)
        tensors = tf.read_all()
        tensors["model.layers.99.phantom.weight"] = np.zeros(4, dtype=np.float32)
        write_tensorfile(merged_checkpoint.weights, tensors,
                         dtype=untied_config.storage_dtype)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("unexpected tensors" in i for i in report.issues)

    def test_wrong_tensor_shape_detected(self, merged_checkpoint, untied_config):
        tf = TensorFile(merged_checkpoint.weights)
        tensors = tf.read_all()
        tensors["model.norm.weight"] = np.zeros(7, dtype=np.float32)
        write_tensorfile(merged_checkpoint.weights, tensors,
                         dtype=untied_config.storage_dtype)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("shape" in i for i in report.issues)

    def test_missing_rank_shard_detected(self, merged_checkpoint):
        merged_checkpoint.shard(1).unlink()
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("missing shard for rank 1" in i for i in report.issues)

    def test_truncated_group_set_detected(self, merged_checkpoint):
        path = merged_checkpoint.shard(0)
        shard = read_blob(path)
        shard["groups"] = shard["groups"][:-2]
        write_blob(path, shard)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("missing" in i for i in report.issues)

    def test_wrong_group_numel_detected(self, merged_checkpoint):
        path = merged_checkpoint.shard(0)
        shard = read_blob(path)
        shard["groups"][3]["numel"] = 1
        write_blob(path, shard)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("numel" in i for i in report.issues)

    def test_malformed_fp32_shard_detected(self, merged_checkpoint):
        path = merged_checkpoint.shard(0)
        shard = read_blob(path)
        first_group = shard["groups"][0]["index"]
        shard["fp32_flat_groups"][first_group] = np.zeros(1, dtype=np.float32)
        write_blob(path, shard)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("fp32 shard malformed" in i for i in report.issues)

    def test_missing_moment_detected(self, merged_checkpoint):
        path = merged_checkpoint.shard(0)
        shard = read_blob(path)
        first_group = shard["groups"][0]["index"]
        del shard["state"][first_group]["exp_avg_sq"]
        write_blob(path, shard)
        report = verify_checkpoint(merged_checkpoint.dir)
        assert any("exp_avg_sq" in i for i in report.issues)

    def test_raise_if_failed(self, tmp_path):
        from repro.util.errors import MergeError

        report = verify_checkpoint(tmp_path / "ghost")
        with pytest.raises(MergeError, match="verification failed"):
            report.raise_if_failed()

    def test_report_str(self, merged_checkpoint):
        report = verify_checkpoint(merged_checkpoint.dir)
        assert "OK" in str(report)
