"""Evaluation benchmarks and the likelihood scorer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import MedicalKB, WordTokenizer, pubmed_like_corpus
from repro.evalbench import (
    BENCHMARK_NAMES,
    build_benchmarks,
    choice_logprobs,
    evaluate_benchmark,
    evaluate_suite,
    perplexity,
    score_item,
    suite_table,
)
from repro.evalbench.benchmarks import MCQItem
from repro.nn import build_model, get_config
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def kb():
    return MedicalKB.build(1)


@pytest.fixture(scope="module")
def model_and_tok(kb):
    docs = pubmed_like_corpus(kb, n_docs=40, seed=0)
    tok = WordTokenizer.train(docs, vocab_size=256)
    cfg = get_config("tiny-untied").replace(vocab_size=tok.vocab_size)
    return build_model(cfg, seed=0), tok


class TestBenchmarkConstruction:
    def test_all_five_suites(self, kb):
        suites = build_benchmarks(kb, items_per_benchmark=10)
        assert set(suites) == set(BENCHMARK_NAMES)
        assert all(len(s) == 10 for s in suites.values())

    def test_deterministic(self, kb):
        a = build_benchmarks(kb, seed=5, items_per_benchmark=8)
        b = build_benchmarks(kb, seed=5, items_per_benchmark=8)
        assert a["medqa"].items == b["medqa"].items

    def test_answers_in_choices(self, kb):
        for bench in build_benchmarks(kb, items_per_benchmark=12).values():
            for item in bench.items:
                assert 0 <= item.answer_index < len(item.choices)

    def test_mcq_answer_is_correct_fact(self, kb):
        suites = build_benchmarks(kb, items_per_benchmark=len(kb.diseases))
        by_name = {d.name: d for d in kb.diseases}
        for item in suites["medqa"].items:
            disease = next(n for n in by_name if n in item.question)
            assert item.choices[item.answer_index] == by_name[disease].treatment

    def test_chance_accuracy(self, kb):
        suites = build_benchmarks(kb, items_per_benchmark=10)
        assert suites["medqa"].chance_accuracy == pytest.approx(0.25)
        assert suites["pubmedqa"].chance_accuracy == pytest.approx(1 / 3)

    def test_bad_answer_index_rejected(self):
        with pytest.raises(ConfigError):
            MCQItem(question="q", choices=("a", "b"), answer_index=5)


class TestScorer:
    def test_choice_logprobs_finite_and_one_per_choice(self, model_and_tok, kb):
        model, tok = model_and_tok
        item = build_benchmarks(kb, items_per_benchmark=1)["medqa"].items[0]
        scores = choice_logprobs(model, tok, item)
        assert len(scores) == len(item.choices)
        assert all(np.isfinite(s) for s in scores)

    def test_score_item_deterministic(self, model_and_tok, kb):
        model, tok = model_and_tok
        item = build_benchmarks(kb, items_per_benchmark=1)["mmlu"].items[0]
        assert score_item(model, tok, item) == score_item(model, tok, item)

    def test_scorer_prefers_likely_continuation(self, model_and_tok):
        """An item whose correct choice is a high-probability token wins."""
        model, tok = model_and_tok
        # Find the model's own argmax continuation for a prompt.
        prompt = "the recommended treatment"
        ids = np.asarray(tok.encode(prompt, add_bos=True))[None, :]
        from repro.autograd.tensor import no_grad

        with no_grad():
            logits = model(ids).data[0, -1]
        best_token = tok.vocab[int(np.argmax(logits))]
        worst_token = tok.vocab[int(np.argmin(logits))]
        if best_token in WordTokenizer.SPECIALS or worst_token in WordTokenizer.SPECIALS:
            pytest.skip("argmax hit a special token on this init")
        item = MCQItem(question=prompt, choices=(worst_token, best_token), answer_index=1)
        assert score_item(model, tok, item)

    def test_evaluate_benchmark_bounds(self, model_and_tok, kb):
        model, tok = model_and_tok
        bench = build_benchmarks(kb, items_per_benchmark=6)["mmlu_med"]
        acc = evaluate_benchmark(model, tok, bench)
        assert 0.0 <= acc <= 100.0

    def test_max_items_cap(self, model_and_tok, kb):
        model, tok = model_and_tok
        bench = build_benchmarks(kb, items_per_benchmark=8)["mmlu"]
        acc = evaluate_benchmark(model, tok, bench, max_items=2)
        assert acc in (0.0, 50.0, 100.0)

    def test_perplexity_close_to_vocab_at_init(self, model_and_tok):
        model, tok = model_and_tok
        rng = np.random.default_rng(0)
        batches = [rng.integers(0, model.config.vocab_size, size=(2, 16))]
        ppl = perplexity(model, batches)
        assert 0.5 * model.config.vocab_size < ppl < 2.0 * model.config.vocab_size


class TestHarness:
    def test_suite_returns_all_benchmarks(self, model_and_tok, kb):
        model, tok = model_and_tok
        scores = evaluate_suite(model, tok, kb, items_per_benchmark=4)
        assert set(scores) == set(BENCHMARK_NAMES)

    def test_suite_table_render(self):
        rows = {
            "Qwen2.5-7B": {n: 70.0 for n in BENCHMARK_NAMES},
            "parity-400": {n: 69.0 for n in BENCHMARK_NAMES},
        }
        table = suite_table(rows, "Table 2")
        out = table.render()
        assert "Qwen2.5-7B" in out and "MMLU" in out and "*" in out
