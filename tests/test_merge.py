"""The LLMTailor merge pipeline: weights + optimizer shards + configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    LLMTailor,
    MergeOptions,
    MergeRecipe,
    mergekit_merge,
    verify_checkpoint,
)
from repro.io import CheckpointPaths, Storage, load_checkpoint, save_checkpoint, TensorFile
from repro.nn import slot_of_param
from repro.util.errors import MergeError

from conftest import make_engine, train_steps


def _odd_even_sets(config):
    L = config.num_hidden_layers
    odd = [f"layers.{i}" for i in range(L) if i % 2 == 1] + ["embed_tokens"]
    even = [f"layers.{i}" for i in range(L) if i % 2 == 0] + ["norm", "lm_head"]
    return odd, even


def _parity_recipe(storage, config, **options):
    odd, _ = _odd_even_sets(config)
    assignments = {slot: storage.root / "checkpoint-100" for slot in odd}
    return MergeRecipe(
        base_checkpoint=storage.root / "checkpoint-200",
        assignments=assignments,
        options=MergeOptions(**options),
    )


class TestParityMerge:
    def test_frankenstein_state_is_slotwise_correct(self, checkpoint_run, tmp_path):
        storage, model, engine, config, snapshots = checkpoint_run
        recipe = _parity_recipe(storage, config)
        result = LLMTailor(recipe).merge(output=tmp_path / "merged")
        assert result.verify_report is not None and result.verify_report.ok

        model2, engine2 = make_engine(config, seed=77)
        load_checkpoint(
            CheckpointPaths(tmp_path / "merged"),
            model=model2, config=config, engine=engine2,
        )
        odd, _ = _odd_even_sets(config)
        merged_state = engine2.master_state_dict()
        for name, value in merged_state.items():
            source_step = 100 if slot_of_param(name) in odd else 200
            np.testing.assert_array_equal(
                value, snapshots[source_step][name],
                err_msg=f"{name} should come from checkpoint-{source_step}",
            )

    def test_merged_checkpoint_is_complete_and_resumable(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        result = LLMTailor(_parity_recipe(storage, config)).merge(output=tmp_path / "m")
        manifest = result.output.read_manifest()
        assert manifest["complete"] is True
        assert manifest["step"] == 200  # from config source (base)
        assert manifest["strategy"] == "llmtailor-merge"
        assert "merge_provenance" in manifest

    def test_config_files_copied(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        result = LLMTailor(_parity_recipe(storage, config)).merge(output=tmp_path / "m")
        assert "trainer_state.json" in result.config_files_copied
        assert (result.output.dir / "config.json").exists()

    def test_interleaved_mode_loads_more_files(self, checkpoint_run, tmp_path):
        """Paper §5.4: parity interleave re-loads checkpoints per layer."""
        storage, _, _, config, _ = checkpoint_run
        cached = LLMTailor(_parity_recipe(storage, config, cache_mode="per-checkpoint")).merge(
            output=tmp_path / "a"
        )
        interleaved = LLMTailor(_parity_recipe(storage, config, cache_mode="none")).merge(
            output=tmp_path / "b"
        )
        world = 2
        n_slots = config.num_model_slots
        assert cached.optimizer_files_loaded == 2 * world  # 2 checkpoints
        assert interleaved.optimizer_files_loaded == n_slots * world
        assert interleaved.optimizer_bytes_loaded > cached.optimizer_bytes_loaded
        # Same output either way.
        a, b = TensorFile(cached.output.weights), TensorFile(interleaved.output.weights)
        for name in a.names:
            np.testing.assert_array_equal(a.read(name), b.read(name))

    def test_parallel_workers_match_sequential(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        seq = LLMTailor(_parity_recipe(storage, config, workers=1)).merge(output=tmp_path / "s")
        par = LLMTailor(_parity_recipe(storage, config, workers=2)).merge(output=tmp_path / "p")
        from repro.io import read_blob

        for rank in range(2):
            a = read_blob(seq.output.shard(rank))
            b = read_blob(par.output.shard(rank))
            for g in a["fp32_flat_groups"]:
                np.testing.assert_array_equal(
                    a["fp32_flat_groups"][g], b["fp32_flat_groups"][g]
                )

    def test_rank_stats_in_rank_order(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        result = LLMTailor(_parity_recipe(storage, config, workers=2)).merge(output=tmp_path / "m")
        assert [s.rank for s in result.rank_stats] == [0, 1]
        assert all(s.checkpoints_touched == 2 for s in result.rank_stats)

    def test_identity_merge_resumes_bit_exactly(self, tmp_path, untied_config):
        """Merging a full checkpoint with itself == plain resume."""
        model, engine = make_engine(untied_config)
        storage = Storage(tmp_path / "run")
        train_steps(model, engine, untied_config, 2)
        save_checkpoint(storage, step=50, model=model, config=untied_config,
                        engine=engine, trainer_state={"global_step": 50})
        recipe = MergeRecipe(base_checkpoint=storage.root / "checkpoint-50")
        LLMTailor(recipe).merge(output=tmp_path / "identity")

        m_direct, e_direct = make_engine(untied_config, seed=5)
        load_checkpoint(CheckpointPaths(storage.root / "checkpoint-50"),
                        model=m_direct, config=untied_config, engine=e_direct)
        m_merged, e_merged = make_engine(untied_config, seed=6)
        load_checkpoint(CheckpointPaths(tmp_path / "identity"),
                        model=m_merged, config=untied_config, engine=e_merged)

        l_direct = train_steps(m_direct, e_direct, untied_config, 3, seed=9)
        l_merged = train_steps(m_merged, e_merged, untied_config, 3, seed=9)
        assert l_direct == l_merged  # bit-exact trajectories


class TestMergeValidation:
    def test_missing_shard_detected(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        shard = CheckpointPaths(storage.root / "checkpoint-100").shard(1)
        shard.unlink()
        with pytest.raises(MergeError, match="missing optimizer shard"):
            LLMTailor(_parity_recipe(storage, config)).merge(output=tmp_path / "m")

    def test_manifest_lies_about_slots_detected(self, checkpoint_run, tmp_path):
        """A checkpoint whose manifest over-claims is caught at group copy."""
        storage, _, _, config, _ = checkpoint_run
        paths = CheckpointPaths(storage.root / "checkpoint-100")
        manifest = paths.read_manifest()
        manifest["slots"] = manifest["all_slots"]  # lie: claim everything
        paths.write_manifest(manifest)
        odd, even = _odd_even_sets(config)
        # Ask for an even layer from checkpoint-100, which never saved it.
        recipe = MergeRecipe(
            base_checkpoint=storage.root / "checkpoint-200",
            assignments={"layers.0": storage.root / "checkpoint-100",
                         **{s: storage.root / "checkpoint-100" for s in odd}},
        )
        with pytest.raises(MergeError, match="lacks (group|tensor)"):
            LLMTailor(recipe).merge(output=tmp_path / "m")

    def test_verify_flags_tampered_output(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        result = LLMTailor(_parity_recipe(storage, config)).merge(output=tmp_path / "m")
        # Tamper: mark a shard group with inverted decay.
        from repro.io import read_blob, write_blob

        shard_path = result.output.shard(0)
        shard = read_blob(shard_path)
        shard["groups"][0]["weight_decay"] = 0.5  # norm group must be 0
        write_blob(shard_path, shard)
        report = verify_checkpoint(result.output.dir)
        assert not report.ok
        assert any("decay" in issue for issue in report.issues)

    def test_verify_sources_bitwise(self, checkpoint_run, tmp_path):
        storage, _, _, config, _ = checkpoint_run
        result = LLMTailor(_parity_recipe(storage, config)).merge(output=tmp_path / "m")
        sources = {
            "layers.1": CheckpointPaths(storage.root / "checkpoint-100"),
            "norm": CheckpointPaths(storage.root / "checkpoint-200"),
        }
        report = verify_checkpoint(result.output.dir, sources=sources)
        assert report.ok, report.issues


@pytest.fixture
def full_checkpoint_run(tmp_path, untied_config):
    """Two FULL checkpoints (steps 100, 200) for weights-only merging."""
    model, engine = make_engine(untied_config)
    storage = Storage(tmp_path / "full-run")
    train_steps(model, engine, untied_config, 2)
    save_checkpoint(storage, step=100, model=model, config=untied_config,
                    engine=engine, trainer_state={"global_step": 100})
    train_steps(model, engine, untied_config, 2)
    save_checkpoint(storage, step=200, model=model, config=untied_config,
                    engine=engine, trainer_state={"global_step": 200})
    return storage, untied_config


class TestMiniMergeKit:
    def test_passthrough_swaps_layers_only(self, full_checkpoint_run, tmp_path):
        storage, config = full_checkpoint_run
        out = mergekit_merge(
            base=storage.root / "checkpoint-200",
            output=tmp_path / "mk",
            method="passthrough",
            layer_sources={1: storage.root / "checkpoint-100"},
        )
        merged = TensorFile(out / "model.tsr")
        src100 = TensorFile(CheckpointPaths(storage.root / "checkpoint-100").weights)
        src200 = TensorFile(CheckpointPaths(storage.root / "checkpoint-200").weights)
        np.testing.assert_array_equal(
            merged.read("model.layers.1.mlp.up_proj.weight"),
            src100.read("model.layers.1.mlp.up_proj.weight"),
        )
        np.testing.assert_array_equal(
            merged.read("model.norm.weight"), src200.read("model.norm.weight")
        )

    def test_output_is_not_resumable(self, full_checkpoint_run, tmp_path):
        """The §3 limitation: MergeKit output lacks optimizer/manifest."""
        storage, config = full_checkpoint_run
        out = mergekit_merge(
            base=storage.root / "checkpoint-200", output=tmp_path / "mk", method="passthrough"
        )
        assert not (out / "tailor_manifest.json").exists()
        assert not any(out.rglob("*optim_states*"))

    def test_linear_blend_of_self_is_identity(self, full_checkpoint_run, tmp_path):
        storage, config = full_checkpoint_run
        out = mergekit_merge(
            base=storage.root / "checkpoint-200",
            other=storage.root / "checkpoint-200",
            output=tmp_path / "mk",
            method="linear",
            blend=0.5,
        )
        merged = TensorFile(out / "model.tsr")
        src = TensorFile(CheckpointPaths(storage.root / "checkpoint-200").weights)
        name = "model.layers.0.self_attn.q_proj.weight"
        np.testing.assert_allclose(merged.read(name), src.read(name), atol=1e-3)

    def test_slerp_runs_and_writes(self, full_checkpoint_run, tmp_path):
        storage, config = full_checkpoint_run
        out = mergekit_merge(
            base=storage.root / "checkpoint-200",
            other=storage.root / "checkpoint-100",
            output=tmp_path / "mk",
            method="slerp",
            blend=0.5,
        )
        assert (out / "model.tsr").exists()

    def test_unknown_method_rejected(self, full_checkpoint_run, tmp_path):
        storage, _ = full_checkpoint_run
        from repro.util.errors import RecipeError

        with pytest.raises(RecipeError):
            mergekit_merge(
                base=storage.root / "checkpoint-200", output=tmp_path / "x", method="ties"
            )
