"""Serialization formats: tensorfile (lazy) and blobfile (monolithic)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io.blobfile import decode, encode, read_blob, write_blob
from repro.io.tensorfile import TensorFile, write_tensorfile
from repro.numerics import DType, quantize
from repro.util.errors import CheckpointFormatError


class TestTensorFile:
    def _sample(self, rng):
        return {
            "model.embed_tokens.weight": rng.standard_normal((16, 8)).astype(np.float32),
            "model.norm.weight": rng.standard_normal(8).astype(np.float32),
            "lm_head.weight": rng.standard_normal((16, 8)).astype(np.float32),
        }

    def test_roundtrip_bf16(self, tmp_path, rng):
        tensors = self._sample(rng)
        path = tmp_path / "m.tsr"
        write_tensorfile(path, tensors, dtype=DType.BF16, metadata={"step": 5})
        tf = TensorFile(path)
        assert set(tf.names) == set(tensors)
        assert tf.metadata == {"step": 5}
        for name, arr in tensors.items():
            np.testing.assert_array_equal(tf.read(name), quantize(arr, DType.BF16))

    def test_fp32_roundtrip_exact(self, tmp_path, rng):
        tensors = self._sample(rng)
        write_tensorfile(tmp_path / "m.tsr", tensors, dtype=DType.FP32)
        tf = TensorFile(tmp_path / "m.tsr")
        for name, arr in tensors.items():
            np.testing.assert_array_equal(tf.read(name), arr)

    def test_per_tensor_dtype_map(self, tmp_path, rng):
        tensors = self._sample(rng)
        dtype = {n: (DType.FP32 if "norm" in n else DType.BF16) for n in tensors}
        write_tensorfile(tmp_path / "m.tsr", tensors, dtype=dtype)
        tf = TensorFile(tmp_path / "m.tsr")
        assert tf.dtype("model.norm.weight") is DType.FP32
        assert tf.dtype("lm_head.weight") is DType.BF16

    def test_bf16_bytes_are_two_per_element(self, tmp_path, rng):
        tensors = {"w": rng.standard_normal((32, 32)).astype(np.float32)}
        write_tensorfile(tmp_path / "m.tsr", tensors, dtype=DType.BF16)
        assert TensorFile(tmp_path / "m.tsr").nbytes("w") == 32 * 32 * 2

    def test_shapes_and_total(self, tmp_path, rng):
        tensors = self._sample(rng)
        write_tensorfile(tmp_path / "m.tsr", tensors, dtype=DType.BF16)
        tf = TensorFile(tmp_path / "m.tsr")
        assert tf.shape("model.embed_tokens.weight") == (16, 8)
        assert tf.total_nbytes() == sum(tf.nbytes(n) for n in tf.names)
        assert len(tf) == 3 and "model.norm.weight" in tf

    def test_missing_tensor_raises(self, tmp_path, rng):
        write_tensorfile(tmp_path / "m.tsr", self._sample(rng))
        with pytest.raises(CheckpointFormatError, match="no tensor named"):
            TensorFile(tmp_path / "m.tsr").read("ghost")

    def test_corruption_detected_by_crc(self, tmp_path, rng):
        path = tmp_path / "m.tsr"
        write_tensorfile(path, self._sample(rng), dtype=DType.BF16)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a data byte
        path.write_bytes(bytes(raw))
        tf = TensorFile(path)
        with pytest.raises(CheckpointFormatError, match="CRC"):
            tf.read_all()

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "fake.tsr"
        path.write_bytes(b"NOTATENSORFILE" + b"\x00" * 64)
        with pytest.raises(CheckpointFormatError, match="bad magic"):
            TensorFile(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointFormatError, match="not found"):
            TensorFile(tmp_path / "nope.tsr")

    def test_read_raw_roundtrip(self, tmp_path, rng):
        path = tmp_path / "m.tsr"
        tensors = self._sample(rng)
        write_tensorfile(path, tensors, dtype=DType.BF16)
        tf = TensorFile(path)
        raw, entry = tf.read_raw("model.norm.weight")
        assert len(raw) == entry["nbytes"]

    def test_atomic_write_no_tmp_left(self, tmp_path, rng):
        write_tensorfile(tmp_path / "m.tsr", self._sample(rng))
        assert not list(tmp_path.glob("*.tmp"))


class TestBlobEncoding:
    def test_scalar_types(self):
        for value in [None, True, False, 42, -7, 3.25, "hello", b"raw"]:
            assert decode(encode(value)) == value

    def test_nested_structures(self):
        obj = {"a": [1, {"b": None}], "c": {"d": [True, 2.5, "x"]}, 3: "int-key"}
        assert decode(encode(obj)) == obj

    def test_ndarray_dtypes_and_shapes(self, rng):
        for dtype in (np.float32, np.float64, np.int64, np.uint16):
            arr = (rng.standard_normal((3, 4)) * 10).astype(dtype)
            out = decode(encode(arr))
            assert out.dtype == arr.dtype and out.shape == arr.shape
            np.testing.assert_array_equal(out, arr)

    def test_zero_dim_array(self):
        arr = np.float32(3.5).reshape(())
        out = decode(encode(np.asarray(arr)))
        assert out.shape == () and out == np.float32(3.5)

    def test_unsupported_type_rejected(self):
        with pytest.raises(CheckpointFormatError):
            encode({"bad": object()})
        with pytest.raises(CheckpointFormatError):
            encode({(1, 2): "tuple-key"})

    def test_truncated_payload_detected(self):
        payload = encode({"a": [1, 2, 3]})
        with pytest.raises(CheckpointFormatError):
            decode(payload[:-2])

    def test_trailing_bytes_detected(self):
        with pytest.raises(CheckpointFormatError, match="trailing"):
            decode(encode(1) + b"x")

    _json_like = st.recursive(
        st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**62), max_value=2**62),
            st.floats(allow_nan=False),
            st.text(max_size=12),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=6), children, max_size=4),
        ),
        max_leaves=16,
    )

    @settings(max_examples=100, deadline=None)
    @given(_json_like)
    def test_property_roundtrip(self, obj):
        assert decode(encode(obj)) == obj


class TestBlobFile:
    def _shard_like(self, rng):
        return {
            "rank": 0,
            "world_size": 2,
            "fp32_flat_groups": {0: rng.standard_normal(10).astype(np.float32)},
            "state": {0: {"step": 3, "exp_avg": rng.standard_normal(10).astype(np.float32)}},
        }

    def test_roundtrip_compressed_and_raw(self, tmp_path, rng):
        obj = self._shard_like(rng)
        for compress in (True, False):
            path = tmp_path / f"s{compress}.blob"
            write_blob(path, obj, compress=compress)
            out = read_blob(path)
            assert out["rank"] == 0
            np.testing.assert_array_equal(
                out["fp32_flat_groups"][0], obj["fp32_flat_groups"][0]
            )

    def test_compression_shrinks_redundant_data(self, tmp_path):
        obj = {"z": np.zeros(100_000, dtype=np.float32)}
        n_raw = write_blob(tmp_path / "raw.blob", obj, compress=False)
        n_comp = write_blob(tmp_path / "comp.blob", obj, compress=True)
        assert n_comp < n_raw / 10

    def test_corruption_detected(self, tmp_path, rng):
        path = tmp_path / "s.blob"
        write_blob(path, self._shard_like(rng), compress=False)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointFormatError):
            read_blob(path)

    def test_bad_magic_and_missing(self, tmp_path):
        (tmp_path / "bad.blob").write_bytes(b"GARBAGEGARBAGE" + b"\x00" * 30)
        with pytest.raises(CheckpointFormatError, match="bad magic"):
            read_blob(tmp_path / "bad.blob")
        with pytest.raises(CheckpointFormatError, match="not found"):
            read_blob(tmp_path / "missing.blob")

    def test_int_group_keys_survive(self, tmp_path):
        write_blob(tmp_path / "k.blob", {"groups": {0: "a", 7: "b"}})
        out = read_blob(tmp_path / "k.blob")
        assert set(out["groups"]) == {0, 7}
