"""Checkpoint round-trips through the ZeRO-3 engine at several world sizes.

Complements ``test_dist.py`` (in-memory rank state) and
``test_io_checkpoint.py`` (ws=2 save/load): here the full
``save_checkpoint`` → ``load_checkpoint`` disk path is exercised at world
sizes 1, 2, and 3 — the last hitting the non-divisible padding path —
and for the weight-tied model, asserting bitwise-equal masters after
reload and identical training trajectories afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import GroupPartition
from repro.dist.zero import SHARD_FORMAT_VERSION
from repro.io import Storage, load_checkpoint, read_blob, save_checkpoint
from repro.nn import get_config

from conftest import make_engine, train_steps


def _roundtrip(tmp_path, config, world_size, *, steps=3):
    model, engine = make_engine(config, world_size=world_size)
    train_steps(model, engine, config, steps)
    storage = Storage(tmp_path / f"run-ws{world_size}")
    paths = save_checkpoint(
        storage, step=steps, model=model, config=config, engine=engine,
        trainer_state={"global_step": steps},
    )
    model2, engine2 = make_engine(config, seed=123, world_size=world_size)
    loaded = load_checkpoint(paths, model=model2, config=config, engine=engine2)
    assert loaded.step == steps
    return model, engine, model2, engine2, paths


@pytest.mark.parametrize("world_size", [1, 2, 3])
def test_masters_bitwise_equal_after_reload(tmp_path, untied_config, world_size):
    model, engine, model2, engine2, _ = _roundtrip(tmp_path, untied_config, world_size)
    a, b = engine.master_state_dict(), engine2.master_state_dict()
    assert set(a) == set(b)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k])
    sa, sb = model.state_dict(), model2.state_dict()
    for k in sa:
        np.testing.assert_array_equal(sa[k], sb[k])


def test_world_size_three_exercises_padding(tmp_path, untied_config):
    """ws=3 must hit the zero-padding path in at least one group."""
    model, engine = make_engine(untied_config, world_size=3)
    paddings = [meta.partition.padding for meta in engine.group_meta]
    assert any(p > 0 for p in paddings)
    for meta in engine.group_meta:
        assert meta.partition.padded_numel % 3 == 0
        assert 0 <= meta.partition.padding < 3


@pytest.mark.parametrize("world_size", [1, 3])
def test_training_continues_identically_after_reload(tmp_path, untied_config, world_size):
    """Restored moments + masters reproduce the uninterrupted trajectory."""
    model, engine, model2, engine2, _ = _roundtrip(tmp_path, untied_config, world_size)
    cont = train_steps(model, engine, untied_config, 2)
    resumed = train_steps(model2, engine2, untied_config, 2)
    np.testing.assert_array_equal(cont, resumed)


def test_tied_model_roundtrip_bitwise(tmp_path):
    config = get_config("tiny-tied")
    model, engine, model2, engine2, _ = _roundtrip(tmp_path, config, 2)
    a, b = engine.master_state_dict(), engine2.master_state_dict()
    # Tied model: no lm_head group, embed weights shared with the head.
    assert not any(k.startswith("lm_head") for k in a)
    for k in a:
        np.testing.assert_array_equal(a[k], b[k])
    cont = train_steps(model, engine, config, 2)
    resumed = train_steps(model2, engine2, config, 2)
    np.testing.assert_array_equal(cont, resumed)


def test_shards_on_disk_carry_format_version(tmp_path, untied_config):
    *_, engine2, paths = _roundtrip(tmp_path, untied_config, 2)
    for rank in range(2):
        shard = read_blob(paths.shard(rank))
        assert shard["format_version"] == SHARD_FORMAT_VERSION
        assert shard["zero_stage"] == 3
        assert shard["rank"] == rank
        assert shard["num_total_groups"] == len(engine2.group_meta)


def test_partition_is_exact_for_awkward_sizes():
    """Spot-check the shard math the ws=3 round trip relies on."""
    for numel, world in [(10, 3), (7, 3), (1, 3), (0, 3), (11, 2)]:
        part = GroupPartition(numel, world)
        flat = np.arange(numel, dtype=np.float32)
        np.testing.assert_array_equal(part.gather(part.shards(flat)), flat)
