"""Attention correctness: GQA expansion and a manual reference check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, rope_cache, softmax
from repro.nn import CausalSelfAttention, ModelConfig, causal_mask


def gqa_config(heads: int, kv_heads: int) -> ModelConfig:
    return ModelConfig(
        name=f"gqa-{heads}-{kv_heads}",
        vocab_size=64,
        hidden_size=8 * heads,
        intermediate_size=32,
        num_hidden_layers=1,
        num_attention_heads=heads,
        num_key_value_heads=kv_heads,
    )


class TestGQA:
    @pytest.mark.parametrize("heads,kv", [(4, 4), (4, 2), (4, 1), (8, 2)])
    def test_repeat_kv_matches_numpy_repeat(self, heads, kv, rng):
        attn = CausalSelfAttention(gqa_config(heads, kv), rng=rng)
        batch, seq = 2, 5
        x = rng.standard_normal((batch, kv, seq, attn.head_dim)).astype(np.float32)
        out = attn._repeat_kv(Tensor(x), batch, seq).data
        expected = np.repeat(x, attn.n_rep, axis=1)
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_repeat_kv_gradient_sums_over_repeats(self, rng):
        attn = CausalSelfAttention(gqa_config(4, 2), rng=rng)
        x = Tensor(rng.standard_normal((1, 2, 3, attn.head_dim)).astype(np.float32),
                   requires_grad=True)
        out = attn._repeat_kv(x, 1, 3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(x.data, attn.n_rep))


class TestAttentionReference:
    def test_matches_manual_numpy_attention(self, rng):
        """Full module output vs a hand-rolled numpy attention (no RoPE)."""
        config = gqa_config(2, 2)
        attn = CausalSelfAttention(config, rng=rng)
        batch, seq, hidden = 1, 4, config.hidden_size
        x = rng.standard_normal((batch, seq, hidden)).astype(np.float32)

        # Identity RoPE: cos=1, sin=0.
        cos = np.ones((seq, attn.head_dim), dtype=np.float32)
        sin = np.zeros((seq, attn.head_dim), dtype=np.float32)
        mask = causal_mask(seq)

        out = attn(Tensor(x), cos, sin, mask).data

        # Manual computation.
        def project(lin, x2d):
            return x2d @ lin.weight.data.T

        hd = attn.head_dim
        q = project(attn.q_proj, x[0]).reshape(seq, 2, hd).transpose(1, 0, 2)
        k = project(attn.k_proj, x[0]).reshape(seq, 2, hd).transpose(1, 0, 2)
        v = project(attn.v_proj, x[0]).reshape(seq, 2, hd).transpose(1, 0, 2)
        scores = q @ k.transpose(0, 2, 1) / np.sqrt(hd) + mask[0, 0]
        weights = np.exp(scores - scores.max(-1, keepdims=True))
        weights /= weights.sum(-1, keepdims=True)
        ctx = (weights @ v).transpose(1, 0, 2).reshape(seq, hidden)
        expected = ctx @ attn.o_proj.weight.data.T

        np.testing.assert_allclose(out[0], expected, rtol=1e-4, atol=1e-5)

    def test_attention_rows_attend_only_backward(self, rng):
        """Softmax over masked scores puts ~zero weight on future keys."""
        config = gqa_config(2, 2)
        attn = CausalSelfAttention(config, rng=rng)
        seq = 6
        x = Tensor(rng.standard_normal((1, seq, config.hidden_size)).astype(np.float32))
        q = attn._split_heads(attn.q_proj(x), attn.num_heads)
        k = attn._split_heads(attn.k_proj(x), attn.num_kv_heads)
        scores = (q @ k.swapaxes(-1, -2)) * (1 / np.sqrt(attn.head_dim))
        masked = scores + Tensor(causal_mask(seq))
        weights = softmax(masked, axis=-1).data
        upper = np.triu(np.ones((seq, seq)), k=1).astype(bool)
        assert np.all(weights[0, 0][upper] < 1e-6)

    def test_rope_changes_relative_scores_only(self, rng):
        """RoPE attention scores depend on relative positions: shifting
        both q and k positions by the same offset preserves scores."""
        hd = 8
        cos, sin = rope_cache(32, hd, dtype=np.float64)
        q = rng.standard_normal(hd)
        k = rng.standard_normal(hd)

        def score(pos_q, pos_k):
            from repro.autograd.functional import _rotate_half

            rq = q * cos[pos_q] + _rotate_half(q) * sin[pos_q]
            rk = k * cos[pos_k] + _rotate_half(k) * sin[pos_k]
            return float(rq @ rk)

        assert score(3, 1) == pytest.approx(score(13, 11), rel=1e-9)
        assert score(3, 1) != pytest.approx(score(3, 2), rel=1e-3)
