"""The unified benchmark runner: discovery, normalization, gating."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import (
    ARTIFACT_SCHEMA,
    DEFAULT_THRESHOLD,
    Scenario,
    compare_artifacts,
    discover_scenarios,
    load_artifact,
    normalize_raw,
    render_summary,
    run_scenario,
)


def _raw_doc(means: dict[str, float], version: str = "5.0.0") -> dict:
    return {
        "version": version,
        "machine_info": {"node": "x"},
        "commit_info": {"id": "abc", "branch": "main", "dirty": False},
        "benchmarks": [
            {
                "name": name,
                "fullname": f"benchmarks/bench_x.py::{name}",
                "group": None,
                "params": {"case": name},
                "stats": {"min": mean, "max": mean * 1.1, "mean": mean,
                          "stddev": 0.01, "median": mean, "rounds": 3,
                          "iterations": 1, "ops": 1.0 / mean},
            }
            for name, mean in means.items()
        ],
    }


class TestProfilePass:
    def test_profile_writes_dump_without_touching_timing_stats(self, tmp_path):
        """--profile enables pytest-benchmark's native cProfile dump: the
        timing artifact must keep its benchmark stats, benchmark.stats
        must stay usable inside the test (real scenarios read it after
        the run — a --benchmark-disable-based pass broke exactly that),
        and a PROFILE_<scenario>.txt must appear."""
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_toy.py").write_text(
            "def test_toy(benchmark):\n"
            "    assert benchmark(sum, range(100)) == 4950\n"
            "    assert benchmark.stats['min'] >= 0  # scenarios read stats post-run\n",
            encoding="utf-8",
        )
        scenario = discover_scenarios(bench_dir)[0]
        result = run_scenario(
            scenario, quick=True, results_dir=tmp_path / "out",
            repo_root=bench_dir.parent, profile=True,
        )
        assert result.ok, result.error
        doc = json.loads(result.artifact.read_text(encoding="utf-8"))
        assert doc["benchmarks"], "profiled run must keep timing stats"
        dump = tmp_path / "out" / "PROFILE_toy.txt"
        assert dump.exists()
        assert "cumulative" in dump.read_text(encoding="utf-8")


class TestDiscovery:
    def test_discovers_repo_benchmarks(self):
        scenarios = discover_scenarios("benchmarks")
        names = [s.name for s in scenarios]
        assert "table7_loading_time" in names
        assert "ablation_merge" in names
        assert names == sorted(names)
        assert all(s.path.name.startswith("bench_") for s in scenarios)

    def test_only_filter_and_unknown_name(self, tmp_path):
        (tmp_path / "bench_a.py").write_text("")
        (tmp_path / "bench_b.py").write_text("")
        only = discover_scenarios(tmp_path, only=["b"])
        assert [s.name for s in only] == ["b"]
        with pytest.raises(SystemExit):
            discover_scenarios(tmp_path, only=["nope"])

    def test_artifact_name(self):
        s = Scenario(name="table7", path=__import__("pathlib").Path("x"))
        assert s.artifact_name == "BENCH_table7.json"


class TestNormalization:
    def test_schema_and_stats_subset(self):
        artifact = normalize_raw(
            _raw_doc({"t1": 0.5}), scenario="x", quick=True, commit=None
        )
        assert artifact["schema"] == ARTIFACT_SCHEMA
        assert artifact["scenario"] == "x"
        assert artifact["quick"] is True
        assert artifact["env"]["python"]
        bench = artifact["benchmarks"][0]
        assert bench["stats"]["mean"] == 0.5
        assert "ops" not in bench["stats"]  # normalized subset only

    def test_load_artifact_adapts_raw_format(self, tmp_path):
        raw_path = tmp_path / "BENCH_legacy.json"
        raw_path.write_text(json.dumps(_raw_doc({"t1": 0.25})))
        doc = load_artifact(raw_path)
        assert doc["schema"] == ARTIFACT_SCHEMA
        assert doc["scenario"] == "legacy"
        assert doc["commit"] == {"id": "abc", "branch": "main", "dirty": False}
        assert doc["benchmarks"][0]["stats"]["mean"] == 0.25

    def test_load_artifact_passthrough(self, tmp_path):
        artifact = normalize_raw(_raw_doc({"t": 1.0}), scenario="s", quick=False)
        path = tmp_path / "BENCH_s.json"
        path.write_text(json.dumps(artifact))
        assert load_artifact(path) == artifact

    def test_render_summary_includes_every_benchmark(self, tmp_path):
        path = tmp_path / "BENCH_s.json"
        path.write_text(json.dumps(
            normalize_raw(_raw_doc({"fast": 0.1, "slow": 2.0}),
                          scenario="s", quick=False)
        ))
        table = render_summary([path])
        assert "fast" in table and "slow" in table and "s" in table


class TestCompare:
    def _artifacts(self, base_means, cur_means):
        base = normalize_raw(_raw_doc(base_means), scenario="s", quick=False)
        cur = normalize_raw(_raw_doc(cur_means), scenario="s", quick=True)
        return cur, base

    def test_within_threshold_ok(self):
        cur, base = self._artifacts({"t": 1.0}, {"t": 1.2})
        rows = compare_artifacts(cur, base, threshold=DEFAULT_THRESHOLD)
        assert rows[0]["status"] == "ok"
        assert rows[0]["ratio"] == pytest.approx(1.2)

    def test_regression_flagged(self):
        cur, base = self._artifacts({"t": 1.0}, {"t": 1.3})
        rows = compare_artifacts(cur, base, threshold=0.25)
        assert rows[0]["status"] == "regression"

    def test_improvement_flagged(self):
        cur, base = self._artifacts({"t": 1.0}, {"t": 0.5})
        rows = compare_artifacts(cur, base, threshold=0.25)
        assert rows[0]["status"] == "improvement"

    def test_invalid_mean_surfaces_instead_of_vanishing(self):
        cur, base = self._artifacts({"t": 1.0}, {"t": 1.0})
        cur["benchmarks"][0]["stats"]["mean"] = None  # broken stat collection
        cur["benchmarks"][0]["stats"]["min"] = None
        rows = compare_artifacts(cur, base, threshold=0.25)
        assert rows[0]["status"] == "invalid"
        assert rows[0]["baseline"] == 1.0 and rows[0]["current"] is None

    def test_noise_floor_skips_tiny_baselines(self):
        cur, base = self._artifacts({"t": 0.0001}, {"t": 0.001})
        rows = compare_artifacts(cur, base, threshold=0.25, min_seconds=0.005)
        assert rows[0]["status"] == "skipped"

    def test_new_and_missing_never_gate(self):
        cur, base = self._artifacts({"old": 1.0}, {"old": 1.0, "added": 9.0})
        # "added" only exists in current; "gone" only in baseline.
        cur["benchmarks"][0]["fullname"] = "benchmarks/bench_x.py::old"
        base_doc = normalize_raw(_raw_doc({"old": 1.0, "gone": 2.0}),
                                 scenario="s", quick=False)
        cur_doc = normalize_raw(_raw_doc({"old": 1.0, "added": 3.0}),
                                scenario="s", quick=False)
        rows = compare_artifacts(cur_doc, base_doc, threshold=0.25)
        statuses = {r["fullname"].split("::")[-1]: r["status"] for r in rows}
        assert statuses["added"] == "new"
        assert statuses["gone"] == "missing"
        assert statuses["old"] == "ok"
        assert not any(r["status"] == "regression" for r in rows)


class TestCompareCli:
    """The compare subcommand itself: --only must never gate on nothing."""

    def _write_artifact(self, directory, scenario, means):
        directory.mkdir(parents=True, exist_ok=True)
        doc = normalize_raw(_raw_doc(means), scenario=scenario, quick=False)
        (directory / f"BENCH_{scenario}.json").write_text(json.dumps(doc))

    def test_unknown_only_name_fails_loudly(self, tmp_path):
        """A typo'd --only scenario aborts even when stale artifacts match.

        Stale BENCH_<typo>.json files on both sides would otherwise be
        compared "successfully" while the real scenario goes ungated.
        """
        from repro.bench.runner import main

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_real.py").write_text("")
        # Stale artifacts for a scenario that no longer exists:
        self._write_artifact(tmp_path / "base", "retired", {"t": 1.0})
        self._write_artifact(tmp_path / "cur", "retired", {"t": 1.0})
        with pytest.raises(SystemExit, match="unknown scenario"):
            main([
                "--bench-dir", str(bench_dir), "compare",
                "--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
                "--only", "retired",
            ])

    def test_only_with_missing_bench_dir_fails_loudly(self, tmp_path):
        """No bench dir means --only names cannot be validated: abort."""
        from repro.bench.runner import main

        self._write_artifact(tmp_path / "base", "real", {"t": 1.0})
        self._write_artifact(tmp_path / "cur", "real", {"t": 1.0})
        with pytest.raises(SystemExit, match="bench dir"):
            main([
                "--bench-dir", str(tmp_path / "nowhere"), "compare",
                "--baseline", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
                "--only", "real",
            ])

    def test_known_only_name_still_gates(self, tmp_path):
        from repro.bench.runner import main

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_real.py").write_text("")
        self._write_artifact(tmp_path / "base", "real", {"t": 1.0})
        self._write_artifact(tmp_path / "cur", "real", {"t": 1.0})
        rc = main([
            "--bench-dir", str(bench_dir), "compare",
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
            "--only", "real",
        ])
        assert rc == 0


class TestLegacyAliases:
    """`compare` accepts the retired BENCH_table7 name with a note."""

    def _write_artifact(self, directory, scenario, means, *, filename=None):
        directory.mkdir(parents=True, exist_ok=True)
        doc = normalize_raw(_raw_doc(means), scenario=scenario, quick=False)
        name = filename or f"BENCH_{scenario}.json"
        (directory / name).write_text(json.dumps(doc))

    def test_only_accepts_deprecated_name(self, tmp_path, capsys):
        from repro.bench.runner import main

        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "bench_table7_loading_time.py").write_text("")
        self._write_artifact(tmp_path / "base", "table7_loading_time", {"t": 1.0})
        self._write_artifact(tmp_path / "cur", "table7_loading_time", {"t": 1.0})
        rc = main([
            "--bench-dir", str(bench_dir), "compare",
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
            "--only", "table7",
        ])
        assert rc == 0
        assert "deprecated" in capsys.readouterr().err

    def test_bare_compare_maps_legacy_baseline_filename(self, tmp_path, capsys):
        """An archived BENCH_table7.json baseline gates the current run."""
        from repro.bench.runner import main

        # Baseline under the retired filename; current under the new one.
        self._write_artifact(tmp_path / "base", "table7", {"t": 1.0},
                             filename="BENCH_table7.json")
        self._write_artifact(tmp_path / "cur", "table7_loading_time", {"t": 2.0})
        rc = main([
            "compare",
            "--baseline", str(tmp_path / "base"),
            "--current", str(tmp_path / "cur"),
        ])
        err = capsys.readouterr().err
        assert rc == 1  # 2x the baseline: the regression still gates
        assert "deprecated" in err

    def test_committed_baselines_use_canonical_names_only(self):
        """The duplicate BENCH_table7.json artifact stays retired."""
        from pathlib import Path

        from repro.bench.runner import LEGACY_SCENARIO_ALIASES

        results = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
        for legacy in LEGACY_SCENARIO_ALIASES:
            assert not (results / f"BENCH_{legacy}.json").exists(), (
                f"BENCH_{legacy}.json is deprecated; keep only the "
                "runner-named artifact"
            )
