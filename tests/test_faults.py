"""Chaos engine: fault plans, penalized comm, bitrot, elastic recovery.

The heart of this file is the chaos-resume invariant: a run that loses a
rank at step k and elastically resumes at the surviving world size must
produce bitwise-identical final weights to an uninterrupted reference
run at that world size resumed from the same checkpoint — across world
sizes and across merge strategies (complete trails vs auto-merged
partial trails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import SimComm
from repro.dist.faults import (
    ChaosComm,
    FaultPlan,
    GoodputReport,
    bitrot,
    degraded_link,
    inject_bitrot,
    preemption,
    rank_failure,
    rank_join,
    repair_from_replicas,
    straggler,
)
from repro.io import CheckpointPaths, checkpoint_dir, list_checkpoint_steps
from repro.strategies import plan_fault_cost
from repro.train import ChaosSupervisor, TrainConfig, Trainer, train_with_faults
from repro.util.errors import (
    CheckpointError,
    ConfigError,
    RankFailure,
    TrainingError,
)


def chaos_config(tmp_path, **overrides) -> TrainConfig:
    base = dict(
        model="tiny-untied", task="cpt", total_steps=12,
        checkpoint_strategy="full", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32, log_every=4,
    )
    base.update(overrides)
    return TrainConfig(**base)


def assert_states_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


# ---------------------------------------------------------------------------
# FaultPlan: construction, validation, (de)serialization
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_yaml_round_trip(self, tmp_path):
        plan = FaultPlan(
            events=(
                rank_failure(10, 1),
                straggler(4, 0, 2.5, duration=3),
                degraded_link(0, 1, 0.25),
                bitrot(8, 0, 3),
            ),
            seed=7,
        )
        plan.to_yaml(tmp_path / "plan.yaml")
        assert FaultPlan.from_yaml(tmp_path / "plan.yaml") == plan

    def test_dict_round_trip(self):
        plan = FaultPlan(events=(rank_failure(3, 0),), seed=1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [{"kind": "meteor_strike", "step": 1}]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [], "gpu_count": 8})
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"events": [{"kind": "rank_failure", "step": 1, "gpu": 3}]}
            )

    def test_validate_step_range(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=(rank_failure(99, 0),)).validate(2, 10)

    def test_validate_failures_leave_a_survivor(self):
        plan = FaultPlan(events=(rank_failure(2, 0), rank_failure(4, 0)))
        with pytest.raises(ConfigError):
            plan.validate(2, 10)
        plan.validate(3, 10)  # two failures at ws 3 leave one survivor

    def test_validate_shrinking_world_rank_bounds(self):
        # Second failure names rank 2, but only ranks {0, 1} survive.
        plan = FaultPlan(events=(rank_failure(2, 2), rank_failure(4, 2)))
        with pytest.raises(ConfigError):
            plan.validate(3, 10)

    def test_validate_straggler_and_link(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=(straggler(1, 0, 0.5),)).validate(2, 10)
        with pytest.raises(ConfigError):
            FaultPlan(events=(degraded_link(0, 0, 0.5),)).validate(2, 10)
        with pytest.raises(ConfigError):
            FaultPlan(events=(degraded_link(0, 1, 1.5),)).validate(2, 10)

    def test_sample_is_deterministic_and_valid(self):
        kwargs = dict(seed=42, world_size=4, total_steps=50, n_failures=2,
                      n_stragglers=2, n_degraded_links=1, n_bitrot=1)
        a = FaultPlan.sample(**kwargs)
        b = FaultPlan.sample(**kwargs)
        assert a == b
        a.validate(4, 50)
        assert a != FaultPlan.sample(**{**kwargs, "seed": 43})

    def test_slowdown_windows(self):
        plan = FaultPlan(
            events=(straggler(5, 0, 3.0, duration=2), degraded_link(0, 1, 0.5))
        )
        assert plan.compute_slowdown(4, 2) == 1.0
        assert plan.compute_slowdown(5, 2) == 3.0
        assert plan.compute_slowdown(6, 2) == 3.0
        assert plan.compute_slowdown(7, 2) == 1.0
        # Link degradation affects comm, not compute; straggler affects both.
        assert plan.comm_slowdown(1, 2) == 2.0
        assert plan.comm_slowdown(5, 2) == 3.0
        # Events referencing ranks outside a shrunk world are inert.
        assert plan.compute_slowdown(5, 0) == 1.0

    def test_grow_events_round_trip(self, tmp_path):
        plan = FaultPlan(
            events=(rank_join(4), preemption(6, 1, restore_after=3)), seed=5
        )
        plan.to_yaml(tmp_path / "plan.yaml")
        assert FaultPlan.from_yaml(tmp_path / "plan.yaml") == plan
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_world_events_expands_preemptions(self):
        plan = FaultPlan(events=(preemption(3, 1, restore_after=2),))
        kinds = [(e.kind, e.step) for e in plan.world_events()]
        assert kinds == [("rank_failure", 3), ("rank_join", 5)]
        # The death half keeps restore_after as provenance.
        assert plan.world_events()[0].restore_after == 2
        assert [e.step for e in plan.rank_failures] == [3]
        assert [e.step for e in plan.rank_joins] == [5]

    def test_validate_tracks_grown_world(self):
        # The joiner enters as rank 2; a later failure may name it.
        FaultPlan(events=(rank_join(4), rank_failure(6, 2))).validate(2, 10)
        # Without the join, rank 2 does not exist at world size 2.
        with pytest.raises(ConfigError, match="does not exist"):
            FaultPlan(events=(rank_failure(6, 2),)).validate(2, 10)
        # A shrink-then-grow sequence walks through both transitions.
        FaultPlan(events=(rank_failure(4, 1), rank_join(8))).validate(2, 10)

    def test_validate_preemption_fields(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=(preemption(4, -1, restore_after=2),)).validate(2, 10)
        with pytest.raises(ConfigError):
            FaultPlan(events=(preemption(4, 0, restore_after=0),)).validate(2, 10)
        # Preempting the only rank leaves no survivors.
        with pytest.raises(ConfigError, match="survivor"):
            FaultPlan(events=(preemption(4, 0, restore_after=2),)).validate(1, 10)

    def test_preemption_restore_beyond_horizon_is_legal(self):
        # Capacity never returns inside the run: the join clamps off the
        # end of the schedule and simply never fires.
        plan = FaultPlan(events=(preemption(8, 1, restore_after=100),))
        plan.validate(2, 10)
        assert plan.world_events()[-1].step == 108

    def test_sample_preemption_trace_deterministic_and_valid(self):
        kwargs = dict(seed=11, world_size=4, total_steps=200)
        a = FaultPlan.sample_preemption_trace(**kwargs)
        b = FaultPlan.sample_preemption_trace(**kwargs)
        assert a == b
        assert a.preemptions  # the horizon is long enough to draw events
        a.validate(4, 200)  # sampler self-validates; explicit check too
        assert a != FaultPlan.sample_preemption_trace(**{**kwargs, "seed": 12})

    def test_sample_preemption_trace_respects_world_floor(self):
        plan = FaultPlan.sample_preemption_trace(
            seed=3, world_size=2, total_steps=400,
            mean_interarrival=5.0, mean_restore=50.0, min_world_size=1,
        )
        # Walk the expanded schedule: the world never dips below the floor.
        ws = 2
        for ev in plan.world_events():
            if ev.kind == "rank_join":
                ws += 1
            else:
                ws -= 1
            assert ws >= 1


# ---------------------------------------------------------------------------
# ChaosComm: ring bytes unchanged, penalized seconds charged
# ---------------------------------------------------------------------------

class TestChaosComm:
    def test_bytes_match_plain_simcomm(self):
        plan = FaultPlan(events=(degraded_link(0, 1, 0.5),))
        plain = SimComm(4)
        chaos = ChaosComm(SimComm(4), plan)
        bufs = [np.arange(8, dtype=np.float32) for _ in range(4)]
        plain.all_reduce_mean(bufs)
        out_plain = plain.reduce_scatter_mean([b.copy() for b in bufs])
        chaos.all_reduce_mean(bufs)
        out_chaos = chaos.reduce_scatter_mean([b.copy() for b in bufs])
        assert plain.stats.bytes_by_op == chaos.stats.bytes_by_op
        assert plain.stats.calls_by_op == chaos.stats.calls_by_op
        for a, b in zip(out_plain, out_chaos):
            np.testing.assert_array_equal(a, b)

    def test_seconds_scale_with_slowdown(self):
        plan = FaultPlan(events=(straggler(10, 0, 4.0, duration=1),))
        comm = ChaosComm(SimComm(2), plan, link_bandwidth=1e6)
        buf = np.ones(1000, dtype=np.float32)
        comm.set_step(1)
        comm.all_reduce_mean([buf, buf])
        clean = comm.stats.total_seconds()
        assert clean == pytest.approx(comm.stats.total_bytes() / 1e6)
        comm.set_step(10)
        comm.all_reduce_mean([buf, buf])
        assert comm.stats.total_seconds() == pytest.approx(clean * 5)  # 1x + 4x

    def test_clock_charged_under_comm_category(self):
        from repro.util.timer import SimClock

        clock = SimClock()
        plan = FaultPlan()
        comm = ChaosComm(SimComm(2), plan, clock=clock, link_bandwidth=1e6)
        comm.broadcast(np.ones(512, dtype=np.float32))
        assert clock.by_category["comm"] == pytest.approx(comm.stats.total_seconds())

    def test_world_size_one_is_free(self):
        comm = ChaosComm(SimComm(1), FaultPlan(), link_bandwidth=1.0)
        comm.all_reduce_mean([np.ones(4, dtype=np.float32)])
        assert comm.stats.total_seconds() == 0.0


# ---------------------------------------------------------------------------
# The chaos-resume invariant (acceptance criterion)
# ---------------------------------------------------------------------------

class TestChaosResumeInvariant:
    """Failure at step k + elastic shrink == reference run at N-1 ranks."""

    @pytest.mark.parametrize("world_size", [2, 3, 4])
    @pytest.mark.parametrize("strategy", ["full", "parity"])
    def test_bitwise_after_rank_failure(self, tmp_path, world_size, strategy):
        # Parity without the initial full snapshot leaves only partial
        # checkpoints on disk, forcing recovery through the auto-merge
        # path; "full" recovers straight from a complete checkpoint.
        strategy_kwargs = {"initial_full": False} if strategy == "parity" else {}
        plan = FaultPlan(events=(rank_failure(10, world_size - 1),))
        cfg = chaos_config(
            tmp_path / "chaos", world_size=world_size,
            checkpoint_strategy=strategy, strategy_kwargs=strategy_kwargs,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert result.final_step == cfg.total_steps
        timeline = result.fault_timeline
        assert timeline.recoveries == 1
        recovery = [e for e in timeline.events if e["kind"] == "recovery"][0]
        assert recovery["world_size"] == world_size - 1
        if strategy == "parity":
            assert recovery["source"].startswith("merged-")
        else:
            assert recovery["source"].startswith("checkpoint-")

        # Reference: an uninterrupted run at the surviving world size,
        # resumed from the exact checkpoint the chaos run recovered from.
        chaos_root = supervisor.trainer.storage.root
        resumed_from = recovery["resumed_from"]
        source = chaos_root / recovery["source"]
        ref = Trainer(
            chaos_config(tmp_path / "ref", world_size=world_size - 1,
                         checkpoint_strategy=strategy,
                         strategy_kwargs=strategy_kwargs)
        )
        assert ref.resume_from(CheckpointPaths(source)) == resumed_from
        ref_result = ref.train()
        assert ref_result.interrupted_at is None

        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )
        assert_states_equal(
            supervisor.trainer.model.state_dict(), ref.model.state_dict()
        )

    def test_final_merged_weights_bitwise(self, tmp_path):
        """The on-disk *merged* artifacts agree too, not just live state.

        The run continues long enough after the shrink that the final
        merge trail is entirely post-shrink (the merge tool requires a
        uniform shard world size across its sources).
        """
        from repro.core import LLMTailor
        from repro.io.tensorfile import TensorFile

        world_size = 3
        plan = FaultPlan(events=(rank_failure(10, 2),))
        kwargs = {"initial_full": False}
        cfg = chaos_config(
            tmp_path / "chaos", world_size=world_size, total_steps=20,
            checkpoint_strategy="parity", strategy_kwargs=kwargs,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        supervisor.run()
        recovery = [
            e for e in supervisor.timeline.events if e["kind"] == "recovery"
        ][0]
        assert recovery["source"].startswith("merged-")
        ref = Trainer(
            chaos_config(tmp_path / "ref", world_size=2, total_steps=20,
                         checkpoint_strategy="parity", strategy_kwargs=kwargs)
        )
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / recovery["source"])
        )
        ref.train()

        weights = {}
        for name, trainer in (("chaos", supervisor.trainer), ("ref", ref)):
            tailor = LLMTailor.from_checkpoints(
                trainer.storage.root, failure_step=cfg.total_steps
            )
            out = trainer.storage.root / "final-merged"
            tailor.merge(output=out)
            weights[name] = TensorFile(CheckpointPaths(out).weights).read_all()
        assert_states_equal(weights["chaos"], weights["ref"])

    def test_two_failures_shrink_twice(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 3), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path / "chaos", world_size=4)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert result.fault_timeline.recoveries == 2
        assert supervisor.trainer.config.world_size == 2
        # Reference from the second recovery point at the final world size.
        recovery = [
            e for e in supervisor.timeline.events if e["kind"] == "recovery"
        ][-1]
        ref = Trainer(chaos_config(tmp_path / "ref", world_size=2))
        ref.resume_from(
            CheckpointPaths(
                supervisor.trainer.storage.root
                / f"checkpoint-{recovery['resumed_from']}"
            )
        )
        ref.train()
        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )

    def test_tie_between_complete_and_merge_prefers_complete(self, tmp_path):
        """At equality the complete checkpoint wins — it is merge-free.

        Parity with its initial full snapshot and a failure before the
        second event: the only recovery points are the complete step-4
        checkpoint and a merge trail whose base is also 4.  The
        supervisor must take the cheaper, merge-free path.
        """
        from repro.core.autorecipe import latest_slot_coverage

        plan = FaultPlan(events=(rank_failure(6, 1),))
        cfg = chaos_config(tmp_path, world_size=2, checkpoint_strategy="parity")
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        # Prove this really is a tie: the merge trail anchors at 4 too.
        coverage, _ = latest_slot_coverage(
            supervisor.trainer.storage.root, failure_step=6
        )
        assert max(coverage.values()) == 4
        recovery = [
            e for e in result.fault_timeline.events if e["kind"] == "recovery"
        ][0]
        assert recovery["source"].startswith("checkpoint-")
        assert recovery["resumed_from"] == 4
        assert result.fault_timeline.lost_steps == 2

    def test_supervisor_prefers_freshest_recovery_point(self, tmp_path):
        """A newer partial trail beats an older complete checkpoint.

        Parity with its initial full snapshot: complete at step 4, but
        halves at 8 merge to a base of 8 — recovery must merge and lose
        2 steps, not resume the stale full snapshot and lose 6.
        """
        plan = FaultPlan(events=(rank_failure(10, 1),))
        cfg = chaos_config(tmp_path, world_size=2, checkpoint_strategy="parity")
        result = train_with_faults(cfg, plan)
        recovery = [
            e for e in result.fault_timeline.events if e["kind"] == "recovery"
        ][0]
        assert recovery["source"].startswith("merged-")
        assert recovery["resumed_from"] == 8
        assert result.fault_timeline.lost_steps == 2

    def test_failure_before_first_checkpoint_restarts(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(2, 1),))
        cfg = chaos_config(tmp_path / "chaos", world_size=2)
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        timeline = result.fault_timeline
        assert timeline.lost_steps == 2
        assert timeline.reshard_loads == 0  # nothing on disk to reshard

    def test_train_result_aggregates_legs(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(10, 1),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        # 12 scheduled + 2 replayed steps of compute at 1 sim-sec each.
        assert result.clock["compute"] == pytest.approx(14.0)
        assert result.clock["checkpoint_read.optimizer"] > 0  # the resume
        assert result.checkpoints == [4, 8, 12]
        assert result.failed_rank is None


# ---------------------------------------------------------------------------
# The grow invariant (acceptance criterion): rejoin == clean run at N+1
# ---------------------------------------------------------------------------

GROW_TRAJECTORIES = {
    # name: (initial ws, plan events, final ws)
    "2-3-2": (2, (rank_join(6), rank_failure(10, 2)), 2),
    "4-3-4": (4, (rank_failure(6, 3), rank_join(10)), 4),
}


def assert_rank_shards_equal(eng_a, eng_b) -> None:
    """Per-rank optimizer shards (masters + Adam moments) are bitwise."""
    assert eng_a.world_size == eng_b.world_size
    for rank in range(eng_a.world_size):
        a, b = eng_a.rank_state_dict(rank), eng_b.rank_state_dict(rank)
        assert set(a["fp32_flat_groups"]) == set(b["fp32_flat_groups"])
        for g, flat in a["fp32_flat_groups"].items():
            np.testing.assert_array_equal(
                flat, b["fp32_flat_groups"][g], err_msg=f"rank {rank} group {g}"
            )
            np.testing.assert_array_equal(
                a["state"][g]["exp_avg"], b["state"][g]["exp_avg"]
            )
            np.testing.assert_array_equal(
                a["state"][g]["exp_avg_sq"], b["state"][g]["exp_avg_sq"]
            )


class TestGrowInvariant:
    """Grow-then-shrink chaos run == clean run at the final world size.

    The trajectory 2→3→2 grows first (a cold join through a sync
    checkpoint) and sheds the joiner later; 4→3→4 loses a rank first and
    wins it back.  Either way the chaos run's final masters, Adam
    moments, and bf16 weights must be bitwise equal to an uninterrupted
    reference resumed from the last recovery point at the final world
    size — interpreted and compiled.
    """

    @pytest.mark.parametrize("compile", [False, True])
    @pytest.mark.parametrize("trajectory", sorted(GROW_TRAJECTORIES))
    def test_grow_then_shrink_bitwise(self, tmp_path, trajectory, compile):
        world_size, events, final_ws = GROW_TRAJECTORIES[trajectory]
        plan = FaultPlan(events=events)
        cfg = chaos_config(
            tmp_path / "chaos", world_size=world_size, total_steps=14,
            compile=compile,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert result.final_step == 14
        timeline = result.fault_timeline
        assert timeline.recoveries == 2
        assert timeline.grows == 1
        assert "rank_join" in timeline.kinds()
        assert supervisor.trainer.config.world_size == final_ws

        recovery = [e for e in timeline.events if e["kind"] == "recovery"][-1]
        ref = Trainer(
            chaos_config(
                tmp_path / "ref", world_size=final_ws, total_steps=14,
                compile=compile,
            )
        )
        source = supervisor.trainer.storage.root / recovery["source"]
        assert ref.resume_from(CheckpointPaths(source)) == recovery["resumed_from"]
        ref_result = ref.train()
        assert ref_result.interrupted_at is None

        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )
        assert_states_equal(
            supervisor.trainer.model.state_dict(), ref.model.state_dict()
        )
        assert_rank_shards_equal(supervisor.trainer.engine, ref.engine)

    def test_grow_final_merged_weights_bitwise(self, tmp_path):
        """The on-disk merged artifacts agree after a grow-then-shrink."""
        from repro.core import LLMTailor
        from repro.io.tensorfile import TensorFile

        plan = FaultPlan(events=(rank_join(6), rank_failure(10, 2)))
        kwargs = {"initial_full": False}
        cfg = chaos_config(
            tmp_path / "chaos", world_size=2, total_steps=20,
            checkpoint_strategy="parity", strategy_kwargs=kwargs,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.final_step == 20
        recovery = [
            e for e in supervisor.timeline.events if e["kind"] == "recovery"
        ][-1]
        ref = Trainer(
            chaos_config(tmp_path / "ref", world_size=2, total_steps=20,
                         checkpoint_strategy="parity", strategy_kwargs=kwargs)
        )
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / recovery["source"])
        )
        ref.train()

        weights = {}
        for name, trainer in (("chaos", supervisor.trainer), ("ref", ref)):
            tailor = LLMTailor.from_checkpoints(
                trainer.storage.root, failure_step=cfg.total_steps
            )
            out = trainer.storage.root / "final-merged"
            tailor.merge(output=out)
            weights[name] = TensorFile(CheckpointPaths(out).weights).read_all()
        assert_states_equal(weights["chaos"], weights["ref"])

    def test_grow_leg_accounting(self, tmp_path):
        """A join loses no steps; it costs a sync write plus a reshard read."""
        plan = FaultPlan(events=(rank_join(6),))
        cfg = chaos_config(tmp_path, world_size=2, total_steps=12)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        timeline = result.fault_timeline
        assert timeline.grows == 1 and timeline.recoveries == 1
        assert timeline.lost_steps == 0
        # Step 6 is off the checkpoint cadence: the join forces a sync
        # write, and the grown world reshards from the 2 source shards.
        assert "join_sync" in timeline.kinds()
        assert timeline.reshard_loads == 2
        assert timeline.reshard_bytes > 0
        assert timeline.recovery_seconds > 0
        recovery = [e for e in timeline.events if e["kind"] == "recovery"][0]
        assert recovery["grow"] is True
        assert recovery["lost_steps"] == 0
        assert recovery["world_size"] == 3

    def test_preemption_is_failure_plus_deferred_join(self, tmp_path):
        """One preemption event drives the whole shrink-then-rejoin arc."""
        plan = FaultPlan(events=(preemption(5, 1, restore_after=4),))
        cfg = chaos_config(tmp_path / "chaos", world_size=2, total_steps=14)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        timeline = result.fault_timeline
        assert timeline.recoveries == 2 and timeline.grows == 1
        assert supervisor.trainer.config.world_size == 2
        kinds = timeline.kinds()
        assert kinds.index("rank_failure") < kinds.index("rank_join")

        recovery = [e for e in timeline.events if e["kind"] == "recovery"][-1]
        ref = Trainer(chaos_config(tmp_path / "ref", world_size=2, total_steps=14))
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / recovery["source"])
        )
        ref.train()
        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )


# ---------------------------------------------------------------------------
# Goodput accounting: live runs, soak continuation, planner prediction
# ---------------------------------------------------------------------------

class TestGoodput:
    def test_report_arithmetic(self):
        report = GoodputReport(
            useful_steps=10, lost_steps=2, useful_seconds=10.0,
            lost_seconds=2.0, stall_seconds=0.5, recovery_seconds=9.0,
        )
        assert report.busy_seconds == pytest.approx(12.5)
        # Recovery I/O is reported but excluded from the denominator.
        assert report.goodput == pytest.approx(10 / 12.5)
        assert report.to_dict()["goodput"] == report.goodput
        assert "goodput" in report.summary()
        empty = GoodputReport(
            useful_steps=0, lost_steps=0, useful_seconds=0.0,
            lost_seconds=0.0, stall_seconds=0.0, recovery_seconds=0.0,
        )
        assert empty.goodput == 0.0

    def test_clean_run_has_unit_step_goodput(self, tmp_path):
        result = train_with_faults(chaos_config(tmp_path), FaultPlan())
        report = result.goodput
        assert report.useful_steps == 12 and report.lost_steps == 0
        assert report.lost_seconds == 0.0
        assert report.goodput == pytest.approx(
            12 / (report.useful_seconds + report.stall_seconds)
        )

    def test_chaos_run_accounts_lost_and_stall(self, tmp_path):
        plan = FaultPlan(
            events=(preemption(5, 1, restore_after=4), straggler(3, 0, 2.0, duration=2))
        )
        result = train_with_faults(
            chaos_config(tmp_path, total_steps=14), plan
        )
        report = result.goodput
        timeline = result.fault_timeline
        assert report.useful_steps == 14
        assert report.lost_steps == timeline.lost_steps > 0
        assert report.stall_seconds == pytest.approx(
            result.clock["fault_straggler"] + result.clock["comm"]
        )
        assert report.recovery_seconds == pytest.approx(timeline.recovery_seconds)
        assert 0 < report.goodput < 1.0

    def test_planner_predicts_live_goodput(self, tmp_path):
        """plan_fault_cost replays grow events and lands on the same
        goodput as the live run: lost steps and reshard loads exactly,
        comm-driven stall to 1e-6."""
        plan = FaultPlan(
            events=(
                preemption(5, 1, restore_after=4),
                straggler(7, 0, 2.5, duration=3),
                degraded_link(0, 1, 0.5),
            )
        )
        cfg = chaos_config(tmp_path, world_size=3, total_steps=16)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        cost = plan_fault_cost(
            supervisor.trainer.model_config, plan, world_size=3,
            total_steps=cfg.total_steps,
            checkpoint_interval=cfg.checkpoint_interval,
        )
        timeline = result.fault_timeline
        assert cost.lost_steps == timeline.lost_steps
        assert cost.reshard_loads == timeline.reshard_loads
        assert cost.num_joins == timeline.grows == 1
        assert cost.sync_write_seconds > 0
        assert cost.useful_steps == result.goodput.useful_steps
        assert cost.straggler_seconds == pytest.approx(
            result.clock["fault_straggler"], rel=1e-12
        )
        assert cost.comm_seconds == pytest.approx(result.clock["comm"], rel=1e-6)
        assert cost.goodput == pytest.approx(result.goodput.goodput, rel=1e-6)
        # The planner's own report mirrors the live layout.
        planned = cost.goodput_report()
        assert planned.useful_steps == result.goodput.useful_steps
        assert planned.lost_steps == result.goodput.lost_steps

    def test_soak_continuation_resumes_schedule(self, tmp_path):
        """resume=True restarts a finished soak from its newest complete
        checkpoint and treats already-fired events as applied."""
        out = chaos_config(tmp_path, total_steps=12).output_dir
        plan_a = FaultPlan(events=(preemption(5, 1, restore_after=4),))
        cfg_a = chaos_config(tmp_path, total_steps=12)
        assert cfg_a.output_dir == out
        ChaosSupervisor(cfg_a, plan_a).run()

        plan_b = FaultPlan(
            events=(preemption(5, 1, restore_after=4), rank_failure(18, 0))
        )
        cfg_b = chaos_config(tmp_path, total_steps=24)
        supervisor = ChaosSupervisor(cfg_b, plan_b, resume=True)
        result = supervisor.run()
        assert result.final_step == 24
        timeline = result.fault_timeline
        assert "soak_resume" in timeline.kinds()
        assert timeline.recoveries == 1  # only the part-B failure
        # Continuation goodput counts only this invocation's steps.
        assert result.goodput.useful_steps == 12

    def test_soak_continuation_world_size_mismatch_is_loud(self, tmp_path):
        cfg_a = chaos_config(tmp_path, total_steps=12)
        ChaosSupervisor(cfg_a, FaultPlan()).run()
        # Part B claims a join already happened before step 12, implying
        # world size 3 — but checkpoint-12 was written at 2.
        plan_b = FaultPlan(events=(rank_join(6),))
        cfg_b = chaos_config(tmp_path, total_steps=24)
        with pytest.raises(TrainingError, match="soak continuation mismatch"):
            ChaosSupervisor(cfg_b, plan_b, resume=True).run()

    def test_soak_continuation_requires_checkpoint(self, tmp_path):
        cfg = chaos_config(tmp_path, total_steps=12)
        with pytest.raises(TrainingError, match="no complete checkpoint"):
            ChaosSupervisor(cfg, FaultPlan(), resume=True).run()


# ---------------------------------------------------------------------------
# Straggler / degraded-link accounting in live runs
# ---------------------------------------------------------------------------

class TestSlowdownAccounting:
    def test_straggler_charges_exact_clock_penalty(self, tmp_path):
        plan = FaultPlan(events=(straggler(5, 0, 3.0, duration=4),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        # 4 active steps x (3.0 - 1.0) x 1 sim-sec.
        assert result.clock["fault_straggler"] == pytest.approx(8.0)
        assert result.clock["compute"] == pytest.approx(12.0)

    def test_replayed_straggler_recorded_once_but_charged_twice(self, tmp_path):
        """A straggler window inside the replayed segment re-charges the
        clock (the replayed steps really run slow again) but appears in
        the timeline as the single scheduled event it is."""
        plan = FaultPlan(
            events=(straggler(9, 0, 2.0, duration=2), rank_failure(10, 1))
        )
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        entries = [
            e for e in result.fault_timeline.events if e["kind"] == "straggler"
        ]
        assert len(entries) == 1
        # Steps 9, 10 charged in leg 1, replayed 9, 10 charged again in leg 2.
        assert result.clock["fault_straggler"] == pytest.approx(4.0)

    def test_degraded_link_scales_comm_seconds(self, tmp_path):
        clean = train_with_faults(chaos_config(tmp_path / "a"), FaultPlan())
        degraded = train_with_faults(
            chaos_config(tmp_path / "b"),
            FaultPlan(events=(degraded_link(0, 1, 0.25),)),
        )
        assert clean.clock["comm"] > 0
        assert degraded.clock["comm"] == pytest.approx(clean.clock["comm"] * 4.0)

    def test_clean_plan_is_a_noop_on_training_math(self, tmp_path):
        plain = Trainer(chaos_config(tmp_path / "a")).train()
        chaos = train_with_faults(chaos_config(tmp_path / "b"), FaultPlan())
        assert chaos.final_train_loss == plain.final_train_loss
        assert chaos.final_eval_loss == plain.final_eval_loss
        assert (
            chaos.comm_traffic["bytes_by_op"] == plain.comm_traffic["bytes_by_op"]
        )


# ---------------------------------------------------------------------------
# Bitrot: per-group CRCs catch it; recovery re-reads the replica
# ---------------------------------------------------------------------------

class TestBitrot:
    @pytest.fixture
    def finished_run(self, tmp_path):
        trainer = Trainer(chaos_config(tmp_path, world_size=2))
        trainer.train()
        return trainer

    def test_injected_bitrot_fails_same_world_resume(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=1, group=2)
        fresh = Trainer(
            TrainConfig.from_dict(trainer.config.to_dict())
        )
        with pytest.raises(CheckpointError, match="CRC"):
            fresh.resume_from(ckpt)

    def test_injected_bitrot_fails_elastic_resume(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=0, group=1)
        shrunk = Trainer(
            TrainConfig.from_dict(dict(trainer.config.to_dict(), world_size=1))
        )
        with pytest.raises(CheckpointError, match="CRC"):
            shrunk.resume_from(ckpt)

    def test_repair_from_replicas_restores_bitwise(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        pristine = ckpt.shard(1).read_bytes()
        shard = inject_bitrot(ckpt, rank=1, group=0)
        assert shard.read_bytes() != pristine
        repaired = repair_from_replicas(trainer.storage.root)
        assert repaired == [shard]
        assert shard.read_bytes() == pristine
        # Replica consumed: a second repair pass finds nothing.
        assert repair_from_replicas(trainer.storage.root) == []

    def test_inject_requires_existing_group(self, finished_run):
        ckpt = checkpoint_dir(finished_run.storage.root, 8)
        with pytest.raises(CheckpointError):
            inject_bitrot(ckpt, rank=0, group=999)
        with pytest.raises(CheckpointError):
            inject_bitrot(ckpt, rank=7, group=0)

    def test_end_to_end_bitrot_recovery_is_bitwise(self, tmp_path):
        """Bitrot + rank failure: detected, repaired, and still bitwise."""
        plan = FaultPlan(events=(bitrot(8, 0, 2), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path / "chaos", world_size=2)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        timeline = result.fault_timeline
        assert result.interrupted_at is None
        assert timeline.bitrot_detected == 1
        assert timeline.bitrot_repaired == 1
        assert "bitrot_recovery" in timeline.kinds()

        ref = Trainer(chaos_config(tmp_path / "ref", world_size=1))
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / "checkpoint-8")
        )
        ref.train()
        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )

    def test_bitrot_group_out_of_range_is_skipped_not_fatal(self, tmp_path):
        plan = FaultPlan(events=(bitrot(4, 0, 999),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        assert result.interrupted_at is None
        skipped = [
            e for e in result.fault_timeline.events if e["kind"] == "bitrot_skipped"
        ]
        assert skipped and skipped[0]["group"] == 999

    def test_bitrot_waits_for_a_checkpoint_carrying_its_group(self, tmp_path):
        """Partial (parity) shards: injection defers to a covering save."""
        cfg = chaos_config(
            tmp_path, world_size=2, checkpoint_strategy="parity",
            strategy_kwargs={"initial_full": False}, total_steps=16,
        )
        # Group 0 (embed/first slot region) is only in every other shard.
        plan = FaultPlan(events=(bitrot(4, 0, 0),))
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        injected = [
            e for e in result.fault_timeline.events if e["kind"] == "bitrot"
        ]
        assert len(injected) == 1  # fired exactly once, on a covering save

    def test_bitrot_without_replica_fails_loudly(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=0, group=0, keep_replica=False)
        assert repair_from_replicas(trainer.storage.root) == []
        fresh = Trainer(TrainConfig.from_dict(trainer.config.to_dict()))
        with pytest.raises(CheckpointError, match="CRC"):
            fresh.resume_from(ckpt)


# ---------------------------------------------------------------------------
# Analytic fault-cost planner vs live runs
# ---------------------------------------------------------------------------

class TestPlanFaultCost:
    def test_matches_live_run(self, tmp_path):
        plan = FaultPlan(
            events=(
                rank_failure(10, 2),
                straggler(5, 0, 3.0, duration=4),
                degraded_link(0, 1, 0.25),
            )
        )
        cfg = chaos_config(tmp_path, world_size=3)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        cost = plan_fault_cost(
            supervisor.trainer.model_config, plan, world_size=3,
            total_steps=cfg.total_steps, checkpoint_interval=cfg.checkpoint_interval,
        )
        timeline = result.fault_timeline
        assert cost.lost_steps == timeline.lost_steps
        assert cost.reshard_loads == timeline.reshard_loads
        assert cost.final_world_size == supervisor.trainer.config.world_size
        assert cost.executed_steps == cfg.total_steps + timeline.lost_steps
        assert cost.straggler_seconds == pytest.approx(
            result.clock["fault_straggler"], rel=1e-12
        )
        assert cost.comm_seconds == pytest.approx(result.clock["comm"], rel=1e-6)

    def test_two_failures_and_rewritten_checkpoints(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 3), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path, world_size=4)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        cost = plan_fault_cost(
            supervisor.trainer.model_config, plan, world_size=4,
            total_steps=cfg.total_steps, checkpoint_interval=cfg.checkpoint_interval,
        )
        timeline = result.fault_timeline
        assert cost.lost_steps == timeline.lost_steps
        assert cost.reshard_loads == timeline.reshard_loads
        assert cost.final_world_size == 2

    def test_failure_on_checkpoint_step_loses_nothing(self):
        from repro.nn import get_config

        cost = plan_fault_cost(
            get_config("tiny-untied"), FaultPlan(events=(rank_failure(8, 1),)),
            world_size=2, total_steps=12, checkpoint_interval=4,
        )
        assert cost.lost_steps == 0
        assert cost.reshard_loads == 2

    def test_invalid_plan_rejected(self):
        from repro.nn import get_config

        with pytest.raises(ConfigError):
            plan_fault_cost(
                get_config("tiny-untied"), FaultPlan(events=(rank_failure(8, 5),)),
                world_size=2, total_steps=12, checkpoint_interval=4,
            )


# ---------------------------------------------------------------------------
# CLI: llmtailor train --faults / plan --faults
# ---------------------------------------------------------------------------

class TestCli:
    PLAN_YAML = (
        "seed: 3\n"
        "events:\n"
        "  - kind: straggler\n"
        "    step: 3\n"
        "    rank: 0\n"
        "    slowdown: 2.0\n"
        "    duration: 2\n"
        "  - kind: rank_failure\n"
        "    step: 7\n"
        "    rank: 1\n"
    )

    def test_train_with_faults(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(self.PLAN_YAML)
        rc = main([
            "train", "-o", str(tmp_path / "run"), "--steps", "8",
            "--interval", "4", "--world-size", "2", "--seq-len", "32",
            "--faults", str(plan_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed at step 8" in out
        assert "rank_failure" in out and "recovery" in out
        # The run survived the shrink: checkpoints exist and latest loads.
        assert list_checkpoint_steps(tmp_path / "run") == [4, 8]

    SOAK_PART_A = (
        "events:\n"
        "  - kind: preemption\n"
        "    step: 5\n"
        "    rank: 1\n"
        "    restore_after: 4\n"
    )
    SOAK_PART_B = SOAK_PART_A + (
        "  - kind: rank_failure\n"
        "    step: 18\n"
        "    rank: 0\n"
    )

    def test_train_resume_continues_soak(self, tmp_path, capsys):
        """--resume --faults is a supported soak continuation: part B
        extends the horizon with the same schedule prefix plus later
        events, restarting from part A's newest complete checkpoint."""
        from repro.cli import main

        (tmp_path / "a.yaml").write_text(self.SOAK_PART_A)
        (tmp_path / "b.yaml").write_text(self.SOAK_PART_B)
        base = [
            "train", "-o", str(tmp_path / "run"), "--interval", "4",
            "--world-size", "2", "--seq-len", "32",
        ]
        rc = main(base + ["--steps", "12", "--faults", str(tmp_path / "a.yaml")])
        assert rc == 0
        out_a = capsys.readouterr().out
        assert "completed at step 12" in out_a
        assert "rank_join" in out_a and "goodput" in out_a

        rc = main(
            base
            + ["--steps", "24", "--faults", str(tmp_path / "b.yaml"), "--resume"]
        )
        out_b = capsys.readouterr().out
        assert rc == 0
        assert "completed at step 24" in out_b
        assert "soak_resume" in out_b
        assert list_checkpoint_steps(tmp_path / "run")[-1] == 24

    def test_faults_subcommand_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.yaml"
        rc = main([
            "faults", "-o", str(trace), "--seed", "11",
            "--world-size", "4", "--steps", "200",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "preemption" in out
        plan = FaultPlan.from_yaml(trace)
        assert plan.preemptions
        plan.validate(4, 200)
        # Same seed, same trace.
        rc = main([
            "faults", "-o", str(tmp_path / "again.yaml"), "--seed", "11",
            "--world-size", "4", "--steps", "200",
        ])
        assert rc == 0
        assert FaultPlan.from_yaml(tmp_path / "again.yaml") == plan

    def test_train_without_faults(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "train", "-o", str(tmp_path / "run"), "--steps", "4",
            "--interval", "4", "--world-size", "1", "--seq-len", "32",
        ])
        assert rc == 0
        assert "completed at step 4" in capsys.readouterr().out

    def test_plan_faults_estimate(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(self.PLAN_YAML)
        rc = main([
            "plan", "llama3.2-1b-sim", "full", "--steps", "100",
            "--interval", "10", "--world-size", "4",
            "--faults", str(plan_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault-plan estimate" in out
        assert "lost (replayed) steps  : 7" in out  # failure at 7, interval 10


# ---------------------------------------------------------------------------
# Callback / error surface details
# ---------------------------------------------------------------------------

class TestChaosPlumbing:
    def test_rank_failure_is_a_simulated_failure(self):
        from repro.util.errors import SimulatedFailure

        err = RankFailure(7, 3)
        assert isinstance(err, SimulatedFailure)
        assert err.step == 7 and err.rank == 3

    def test_standalone_trainer_reports_failed_rank(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 1),))
        trainer = Trainer(chaos_config(tmp_path), fault_plan=plan)
        result = trainer.train()
        assert result.interrupted_at == 6
        assert result.failed_rank == 1
        assert result.fault_timeline.kinds() == ["rank_failure"]

    def test_rewritten_checkpoint_drops_stale_rank_shards(self, tmp_path):
        """Replaying a checkpointed step at N-1 ranks cleans rank N-1's shard."""
        plan = FaultPlan(events=(rank_failure(10, 2),))
        cfg = chaos_config(tmp_path, world_size=3)
        supervisor = ChaosSupervisor(cfg, plan)
        supervisor.run()
        root = supervisor.trainer.storage.root
        assert list_checkpoint_steps(root) == [4, 8, 12]
        # Step 12 was written by the shrunk (ws 2) leg: exactly 2 shards.
        ckpt = checkpoint_dir(root, 12)
        assert int(ckpt.read_manifest()["world_size"]) == 2
        shards = sorted(ckpt.optim_dir.glob("zero_pp_rank_*_optim_states.blob"))
        assert len(shards) == 2

    def test_faults_compose_with_retention(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(10, 1),))
        cfg = chaos_config(tmp_path, world_size=2, max_checkpoints=2)
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        assert result.final_step == 12
