"""Chaos engine: fault plans, penalized comm, bitrot, elastic recovery.

The heart of this file is the chaos-resume invariant: a run that loses a
rank at step k and elastically resumes at the surviving world size must
produce bitwise-identical final weights to an uninterrupted reference
run at that world size resumed from the same checkpoint — across world
sizes and across merge strategies (complete trails vs auto-merged
partial trails).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import SimComm
from repro.dist.faults import (
    ChaosComm,
    FaultPlan,
    bitrot,
    degraded_link,
    inject_bitrot,
    rank_failure,
    repair_from_replicas,
    straggler,
)
from repro.io import CheckpointPaths, checkpoint_dir, list_checkpoint_steps
from repro.strategies import plan_fault_cost
from repro.train import ChaosSupervisor, TrainConfig, Trainer, train_with_faults
from repro.util.errors import CheckpointError, ConfigError, RankFailure


def chaos_config(tmp_path, **overrides) -> TrainConfig:
    base = dict(
        model="tiny-untied", task="cpt", total_steps=12,
        checkpoint_strategy="full", checkpoint_interval=4,
        output_dir=str(tmp_path / "run"), world_size=2,
        micro_batch_size=2, grad_accum_steps=1, seq_len=32, log_every=4,
    )
    base.update(overrides)
    return TrainConfig(**base)


def assert_states_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        np.testing.assert_array_equal(a[key], b[key], err_msg=key)


# ---------------------------------------------------------------------------
# FaultPlan: construction, validation, (de)serialization
# ---------------------------------------------------------------------------

class TestFaultPlan:
    def test_yaml_round_trip(self, tmp_path):
        plan = FaultPlan(
            events=(
                rank_failure(10, 1),
                straggler(4, 0, 2.5, duration=3),
                degraded_link(0, 1, 0.25),
                bitrot(8, 0, 3),
            ),
            seed=7,
        )
        plan.to_yaml(tmp_path / "plan.yaml")
        assert FaultPlan.from_yaml(tmp_path / "plan.yaml") == plan

    def test_dict_round_trip(self):
        plan = FaultPlan(events=(rank_failure(3, 0),), seed=1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [{"kind": "meteor_strike", "step": 1}]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [], "gpu_count": 8})
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"events": [{"kind": "rank_failure", "step": 1, "node": 3}]}
            )

    def test_validate_step_range(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=(rank_failure(99, 0),)).validate(2, 10)

    def test_validate_failures_leave_a_survivor(self):
        plan = FaultPlan(events=(rank_failure(2, 0), rank_failure(4, 0)))
        with pytest.raises(ConfigError):
            plan.validate(2, 10)
        plan.validate(3, 10)  # two failures at ws 3 leave one survivor

    def test_validate_shrinking_world_rank_bounds(self):
        # Second failure names rank 2, but only ranks {0, 1} survive.
        plan = FaultPlan(events=(rank_failure(2, 2), rank_failure(4, 2)))
        with pytest.raises(ConfigError):
            plan.validate(3, 10)

    def test_validate_straggler_and_link(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=(straggler(1, 0, 0.5),)).validate(2, 10)
        with pytest.raises(ConfigError):
            FaultPlan(events=(degraded_link(0, 0, 0.5),)).validate(2, 10)
        with pytest.raises(ConfigError):
            FaultPlan(events=(degraded_link(0, 1, 1.5),)).validate(2, 10)

    def test_sample_is_deterministic_and_valid(self):
        kwargs = dict(seed=42, world_size=4, total_steps=50, n_failures=2,
                      n_stragglers=2, n_degraded_links=1, n_bitrot=1)
        a = FaultPlan.sample(**kwargs)
        b = FaultPlan.sample(**kwargs)
        assert a == b
        a.validate(4, 50)
        assert a != FaultPlan.sample(**{**kwargs, "seed": 43})

    def test_slowdown_windows(self):
        plan = FaultPlan(
            events=(straggler(5, 0, 3.0, duration=2), degraded_link(0, 1, 0.5))
        )
        assert plan.compute_slowdown(4, 2) == 1.0
        assert plan.compute_slowdown(5, 2) == 3.0
        assert plan.compute_slowdown(6, 2) == 3.0
        assert plan.compute_slowdown(7, 2) == 1.0
        # Link degradation affects comm, not compute; straggler affects both.
        assert plan.comm_slowdown(1, 2) == 2.0
        assert plan.comm_slowdown(5, 2) == 3.0
        # Events referencing ranks outside a shrunk world are inert.
        assert plan.compute_slowdown(5, 0) == 1.0


# ---------------------------------------------------------------------------
# ChaosComm: ring bytes unchanged, penalized seconds charged
# ---------------------------------------------------------------------------

class TestChaosComm:
    def test_bytes_match_plain_simcomm(self):
        plan = FaultPlan(events=(degraded_link(0, 1, 0.5),))
        plain = SimComm(4)
        chaos = ChaosComm(SimComm(4), plan)
        bufs = [np.arange(8, dtype=np.float32) for _ in range(4)]
        plain.all_reduce_mean(bufs)
        out_plain = plain.reduce_scatter_mean([b.copy() for b in bufs])
        chaos.all_reduce_mean(bufs)
        out_chaos = chaos.reduce_scatter_mean([b.copy() for b in bufs])
        assert plain.stats.bytes_by_op == chaos.stats.bytes_by_op
        assert plain.stats.calls_by_op == chaos.stats.calls_by_op
        for a, b in zip(out_plain, out_chaos):
            np.testing.assert_array_equal(a, b)

    def test_seconds_scale_with_slowdown(self):
        plan = FaultPlan(events=(straggler(10, 0, 4.0, duration=1),))
        comm = ChaosComm(SimComm(2), plan, link_bandwidth=1e6)
        buf = np.ones(1000, dtype=np.float32)
        comm.set_step(1)
        comm.all_reduce_mean([buf, buf])
        clean = comm.stats.total_seconds()
        assert clean == pytest.approx(comm.stats.total_bytes() / 1e6)
        comm.set_step(10)
        comm.all_reduce_mean([buf, buf])
        assert comm.stats.total_seconds() == pytest.approx(clean * 5)  # 1x + 4x

    def test_clock_charged_under_comm_category(self):
        from repro.util.timer import SimClock

        clock = SimClock()
        plan = FaultPlan()
        comm = ChaosComm(SimComm(2), plan, clock=clock, link_bandwidth=1e6)
        comm.broadcast(np.ones(512, dtype=np.float32))
        assert clock.by_category["comm"] == pytest.approx(comm.stats.total_seconds())

    def test_world_size_one_is_free(self):
        comm = ChaosComm(SimComm(1), FaultPlan(), link_bandwidth=1.0)
        comm.all_reduce_mean([np.ones(4, dtype=np.float32)])
        assert comm.stats.total_seconds() == 0.0


# ---------------------------------------------------------------------------
# The chaos-resume invariant (acceptance criterion)
# ---------------------------------------------------------------------------

class TestChaosResumeInvariant:
    """Failure at step k + elastic shrink == reference run at N-1 ranks."""

    @pytest.mark.parametrize("world_size", [2, 3, 4])
    @pytest.mark.parametrize("strategy", ["full", "parity"])
    def test_bitwise_after_rank_failure(self, tmp_path, world_size, strategy):
        # Parity without the initial full snapshot leaves only partial
        # checkpoints on disk, forcing recovery through the auto-merge
        # path; "full" recovers straight from a complete checkpoint.
        strategy_kwargs = {"initial_full": False} if strategy == "parity" else {}
        plan = FaultPlan(events=(rank_failure(10, world_size - 1),))
        cfg = chaos_config(
            tmp_path / "chaos", world_size=world_size,
            checkpoint_strategy=strategy, strategy_kwargs=strategy_kwargs,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert result.final_step == cfg.total_steps
        timeline = result.fault_timeline
        assert timeline.recoveries == 1
        recovery = [e for e in timeline.events if e["kind"] == "recovery"][0]
        assert recovery["world_size"] == world_size - 1
        if strategy == "parity":
            assert recovery["source"].startswith("merged-")
        else:
            assert recovery["source"].startswith("checkpoint-")

        # Reference: an uninterrupted run at the surviving world size,
        # resumed from the exact checkpoint the chaos run recovered from.
        chaos_root = supervisor.trainer.storage.root
        resumed_from = recovery["resumed_from"]
        source = chaos_root / recovery["source"]
        ref = Trainer(
            chaos_config(tmp_path / "ref", world_size=world_size - 1,
                         checkpoint_strategy=strategy,
                         strategy_kwargs=strategy_kwargs)
        )
        assert ref.resume_from(CheckpointPaths(source)) == resumed_from
        ref_result = ref.train()
        assert ref_result.interrupted_at is None

        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )
        assert_states_equal(
            supervisor.trainer.model.state_dict(), ref.model.state_dict()
        )

    def test_final_merged_weights_bitwise(self, tmp_path):
        """The on-disk *merged* artifacts agree too, not just live state.

        The run continues long enough after the shrink that the final
        merge trail is entirely post-shrink (the merge tool requires a
        uniform shard world size across its sources).
        """
        from repro.core import LLMTailor
        from repro.io.tensorfile import TensorFile

        world_size = 3
        plan = FaultPlan(events=(rank_failure(10, 2),))
        kwargs = {"initial_full": False}
        cfg = chaos_config(
            tmp_path / "chaos", world_size=world_size, total_steps=20,
            checkpoint_strategy="parity", strategy_kwargs=kwargs,
        )
        supervisor = ChaosSupervisor(cfg, plan)
        supervisor.run()
        recovery = [
            e for e in supervisor.timeline.events if e["kind"] == "recovery"
        ][0]
        assert recovery["source"].startswith("merged-")
        ref = Trainer(
            chaos_config(tmp_path / "ref", world_size=2, total_steps=20,
                         checkpoint_strategy="parity", strategy_kwargs=kwargs)
        )
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / recovery["source"])
        )
        ref.train()

        weights = {}
        for name, trainer in (("chaos", supervisor.trainer), ("ref", ref)):
            tailor = LLMTailor.from_checkpoints(
                trainer.storage.root, failure_step=cfg.total_steps
            )
            out = trainer.storage.root / "final-merged"
            tailor.merge(output=out)
            weights[name] = TensorFile(CheckpointPaths(out).weights).read_all()
        assert_states_equal(weights["chaos"], weights["ref"])

    def test_two_failures_shrink_twice(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 3), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path / "chaos", world_size=4)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        assert result.interrupted_at is None
        assert result.fault_timeline.recoveries == 2
        assert supervisor.trainer.config.world_size == 2
        # Reference from the second recovery point at the final world size.
        recovery = [
            e for e in supervisor.timeline.events if e["kind"] == "recovery"
        ][-1]
        ref = Trainer(chaos_config(tmp_path / "ref", world_size=2))
        ref.resume_from(
            CheckpointPaths(
                supervisor.trainer.storage.root
                / f"checkpoint-{recovery['resumed_from']}"
            )
        )
        ref.train()
        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )

    def test_supervisor_prefers_freshest_recovery_point(self, tmp_path):
        """A newer partial trail beats an older complete checkpoint.

        Parity with its initial full snapshot: complete at step 4, but
        halves at 8 merge to a base of 8 — recovery must merge and lose
        2 steps, not resume the stale full snapshot and lose 6.
        """
        plan = FaultPlan(events=(rank_failure(10, 1),))
        cfg = chaos_config(tmp_path, world_size=2, checkpoint_strategy="parity")
        result = train_with_faults(cfg, plan)
        recovery = [
            e for e in result.fault_timeline.events if e["kind"] == "recovery"
        ][0]
        assert recovery["source"].startswith("merged-")
        assert recovery["resumed_from"] == 8
        assert result.fault_timeline.lost_steps == 2

    def test_failure_before_first_checkpoint_restarts(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(2, 1),))
        cfg = chaos_config(tmp_path / "chaos", world_size=2)
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        timeline = result.fault_timeline
        assert timeline.lost_steps == 2
        assert timeline.reshard_loads == 0  # nothing on disk to reshard

    def test_train_result_aggregates_legs(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(10, 1),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        # 12 scheduled + 2 replayed steps of compute at 1 sim-sec each.
        assert result.clock["compute"] == pytest.approx(14.0)
        assert result.clock["checkpoint_read.optimizer"] > 0  # the resume
        assert result.checkpoints == [4, 8, 12]
        assert result.failed_rank is None


# ---------------------------------------------------------------------------
# Straggler / degraded-link accounting in live runs
# ---------------------------------------------------------------------------

class TestSlowdownAccounting:
    def test_straggler_charges_exact_clock_penalty(self, tmp_path):
        plan = FaultPlan(events=(straggler(5, 0, 3.0, duration=4),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        # 4 active steps x (3.0 - 1.0) x 1 sim-sec.
        assert result.clock["fault_straggler"] == pytest.approx(8.0)
        assert result.clock["compute"] == pytest.approx(12.0)

    def test_replayed_straggler_recorded_once_but_charged_twice(self, tmp_path):
        """A straggler window inside the replayed segment re-charges the
        clock (the replayed steps really run slow again) but appears in
        the timeline as the single scheduled event it is."""
        plan = FaultPlan(
            events=(straggler(9, 0, 2.0, duration=2), rank_failure(10, 1))
        )
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        entries = [
            e for e in result.fault_timeline.events if e["kind"] == "straggler"
        ]
        assert len(entries) == 1
        # Steps 9, 10 charged in leg 1, replayed 9, 10 charged again in leg 2.
        assert result.clock["fault_straggler"] == pytest.approx(4.0)

    def test_degraded_link_scales_comm_seconds(self, tmp_path):
        clean = train_with_faults(chaos_config(tmp_path / "a"), FaultPlan())
        degraded = train_with_faults(
            chaos_config(tmp_path / "b"),
            FaultPlan(events=(degraded_link(0, 1, 0.25),)),
        )
        assert clean.clock["comm"] > 0
        assert degraded.clock["comm"] == pytest.approx(clean.clock["comm"] * 4.0)

    def test_clean_plan_is_a_noop_on_training_math(self, tmp_path):
        plain = Trainer(chaos_config(tmp_path / "a")).train()
        chaos = train_with_faults(chaos_config(tmp_path / "b"), FaultPlan())
        assert chaos.final_train_loss == plain.final_train_loss
        assert chaos.final_eval_loss == plain.final_eval_loss
        assert (
            chaos.comm_traffic["bytes_by_op"] == plain.comm_traffic["bytes_by_op"]
        )


# ---------------------------------------------------------------------------
# Bitrot: per-group CRCs catch it; recovery re-reads the replica
# ---------------------------------------------------------------------------

class TestBitrot:
    @pytest.fixture
    def finished_run(self, tmp_path):
        trainer = Trainer(chaos_config(tmp_path, world_size=2))
        trainer.train()
        return trainer

    def test_injected_bitrot_fails_same_world_resume(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=1, group=2)
        fresh = Trainer(
            TrainConfig.from_dict(trainer.config.to_dict())
        )
        with pytest.raises(CheckpointError, match="CRC"):
            fresh.resume_from(ckpt)

    def test_injected_bitrot_fails_elastic_resume(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=0, group=1)
        shrunk = Trainer(
            TrainConfig.from_dict(dict(trainer.config.to_dict(), world_size=1))
        )
        with pytest.raises(CheckpointError, match="CRC"):
            shrunk.resume_from(ckpt)

    def test_repair_from_replicas_restores_bitwise(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        pristine = ckpt.shard(1).read_bytes()
        shard = inject_bitrot(ckpt, rank=1, group=0)
        assert shard.read_bytes() != pristine
        repaired = repair_from_replicas(trainer.storage.root)
        assert repaired == [shard]
        assert shard.read_bytes() == pristine
        # Replica consumed: a second repair pass finds nothing.
        assert repair_from_replicas(trainer.storage.root) == []

    def test_inject_requires_existing_group(self, finished_run):
        ckpt = checkpoint_dir(finished_run.storage.root, 8)
        with pytest.raises(CheckpointError):
            inject_bitrot(ckpt, rank=0, group=999)
        with pytest.raises(CheckpointError):
            inject_bitrot(ckpt, rank=7, group=0)

    def test_end_to_end_bitrot_recovery_is_bitwise(self, tmp_path):
        """Bitrot + rank failure: detected, repaired, and still bitwise."""
        plan = FaultPlan(events=(bitrot(8, 0, 2), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path / "chaos", world_size=2)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        timeline = result.fault_timeline
        assert result.interrupted_at is None
        assert timeline.bitrot_detected == 1
        assert timeline.bitrot_repaired == 1
        assert "bitrot_recovery" in timeline.kinds()

        ref = Trainer(chaos_config(tmp_path / "ref", world_size=1))
        ref.resume_from(
            CheckpointPaths(supervisor.trainer.storage.root / "checkpoint-8")
        )
        ref.train()
        assert_states_equal(
            supervisor.trainer.engine.master_state_dict(),
            ref.engine.master_state_dict(),
        )

    def test_bitrot_group_out_of_range_is_skipped_not_fatal(self, tmp_path):
        plan = FaultPlan(events=(bitrot(4, 0, 999),))
        result = train_with_faults(chaos_config(tmp_path, world_size=2), plan)
        assert result.interrupted_at is None
        skipped = [
            e for e in result.fault_timeline.events if e["kind"] == "bitrot_skipped"
        ]
        assert skipped and skipped[0]["group"] == 999

    def test_bitrot_waits_for_a_checkpoint_carrying_its_group(self, tmp_path):
        """Partial (parity) shards: injection defers to a covering save."""
        cfg = chaos_config(
            tmp_path, world_size=2, checkpoint_strategy="parity",
            strategy_kwargs={"initial_full": False}, total_steps=16,
        )
        # Group 0 (embed/first slot region) is only in every other shard.
        plan = FaultPlan(events=(bitrot(4, 0, 0),))
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        injected = [
            e for e in result.fault_timeline.events if e["kind"] == "bitrot"
        ]
        assert len(injected) == 1  # fired exactly once, on a covering save

    def test_bitrot_without_replica_fails_loudly(self, finished_run):
        trainer = finished_run
        ckpt = checkpoint_dir(trainer.storage.root, 8)
        inject_bitrot(ckpt, rank=0, group=0, keep_replica=False)
        assert repair_from_replicas(trainer.storage.root) == []
        fresh = Trainer(TrainConfig.from_dict(trainer.config.to_dict()))
        with pytest.raises(CheckpointError, match="CRC"):
            fresh.resume_from(ckpt)


# ---------------------------------------------------------------------------
# Analytic fault-cost planner vs live runs
# ---------------------------------------------------------------------------

class TestPlanFaultCost:
    def test_matches_live_run(self, tmp_path):
        plan = FaultPlan(
            events=(
                rank_failure(10, 2),
                straggler(5, 0, 3.0, duration=4),
                degraded_link(0, 1, 0.25),
            )
        )
        cfg = chaos_config(tmp_path, world_size=3)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        cost = plan_fault_cost(
            supervisor.trainer.model_config, plan, world_size=3,
            total_steps=cfg.total_steps, checkpoint_interval=cfg.checkpoint_interval,
        )
        timeline = result.fault_timeline
        assert cost.lost_steps == timeline.lost_steps
        assert cost.reshard_loads == timeline.reshard_loads
        assert cost.final_world_size == supervisor.trainer.config.world_size
        assert cost.executed_steps == cfg.total_steps + timeline.lost_steps
        assert cost.straggler_seconds == pytest.approx(
            result.clock["fault_straggler"], rel=1e-12
        )
        assert cost.comm_seconds == pytest.approx(result.clock["comm"], rel=1e-6)

    def test_two_failures_and_rewritten_checkpoints(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 3), rank_failure(10, 1)))
        cfg = chaos_config(tmp_path, world_size=4)
        supervisor = ChaosSupervisor(cfg, plan)
        result = supervisor.run()
        cost = plan_fault_cost(
            supervisor.trainer.model_config, plan, world_size=4,
            total_steps=cfg.total_steps, checkpoint_interval=cfg.checkpoint_interval,
        )
        timeline = result.fault_timeline
        assert cost.lost_steps == timeline.lost_steps
        assert cost.reshard_loads == timeline.reshard_loads
        assert cost.final_world_size == 2

    def test_failure_on_checkpoint_step_loses_nothing(self):
        from repro.nn import get_config

        cost = plan_fault_cost(
            get_config("tiny-untied"), FaultPlan(events=(rank_failure(8, 1),)),
            world_size=2, total_steps=12, checkpoint_interval=4,
        )
        assert cost.lost_steps == 0
        assert cost.reshard_loads == 2

    def test_invalid_plan_rejected(self):
        from repro.nn import get_config

        with pytest.raises(ConfigError):
            plan_fault_cost(
                get_config("tiny-untied"), FaultPlan(events=(rank_failure(8, 5),)),
                world_size=2, total_steps=12, checkpoint_interval=4,
            )


# ---------------------------------------------------------------------------
# CLI: llmtailor train --faults / plan --faults
# ---------------------------------------------------------------------------

class TestCli:
    PLAN_YAML = (
        "seed: 3\n"
        "events:\n"
        "  - kind: straggler\n"
        "    step: 3\n"
        "    rank: 0\n"
        "    slowdown: 2.0\n"
        "    duration: 2\n"
        "  - kind: rank_failure\n"
        "    step: 7\n"
        "    rank: 1\n"
    )

    def test_train_with_faults(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(self.PLAN_YAML)
        rc = main([
            "train", "-o", str(tmp_path / "run"), "--steps", "8",
            "--interval", "4", "--world-size", "2", "--seq-len", "32",
            "--faults", str(plan_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed at step 8" in out
        assert "rank_failure" in out and "recovery" in out
        # The run survived the shrink: checkpoints exist and latest loads.
        assert list_checkpoint_steps(tmp_path / "run") == [4, 8]

    def test_train_resume_with_faults_rejected(self, tmp_path):
        from repro.cli import main

        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(self.PLAN_YAML)
        with pytest.raises(SystemExit, match="--resume"):
            main([
                "train", "-o", str(tmp_path / "run"), "--steps", "8",
                "--faults", str(plan_path), "--resume",
            ])

    def test_train_without_faults(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "train", "-o", str(tmp_path / "run"), "--steps", "4",
            "--interval", "4", "--world-size", "1", "--seq-len", "32",
        ])
        assert rc == 0
        assert "completed at step 4" in capsys.readouterr().out

    def test_plan_faults_estimate(self, tmp_path, capsys):
        from repro.cli import main

        plan_path = tmp_path / "plan.yaml"
        plan_path.write_text(self.PLAN_YAML)
        rc = main([
            "plan", "llama3.2-1b-sim", "full", "--steps", "100",
            "--interval", "10", "--world-size", "4",
            "--faults", str(plan_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault-plan estimate" in out
        assert "lost (replayed) steps  : 7" in out  # failure at 7, interval 10


# ---------------------------------------------------------------------------
# Callback / error surface details
# ---------------------------------------------------------------------------

class TestChaosPlumbing:
    def test_rank_failure_is_a_simulated_failure(self):
        from repro.util.errors import SimulatedFailure

        err = RankFailure(7, 3)
        assert isinstance(err, SimulatedFailure)
        assert err.step == 7 and err.rank == 3

    def test_standalone_trainer_reports_failed_rank(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(6, 1),))
        trainer = Trainer(chaos_config(tmp_path), fault_plan=plan)
        result = trainer.train()
        assert result.interrupted_at == 6
        assert result.failed_rank == 1
        assert result.fault_timeline.kinds() == ["rank_failure"]

    def test_rewritten_checkpoint_drops_stale_rank_shards(self, tmp_path):
        """Replaying a checkpointed step at N-1 ranks cleans rank N-1's shard."""
        plan = FaultPlan(events=(rank_failure(10, 2),))
        cfg = chaos_config(tmp_path, world_size=3)
        supervisor = ChaosSupervisor(cfg, plan)
        supervisor.run()
        root = supervisor.trainer.storage.root
        assert list_checkpoint_steps(root) == [4, 8, 12]
        # Step 12 was written by the shrunk (ws 2) leg: exactly 2 shards.
        ckpt = checkpoint_dir(root, 12)
        assert int(ckpt.read_manifest()["world_size"]) == 2
        shards = sorted(ckpt.optim_dir.glob("zero_pp_rank_*_optim_states.blob"))
        assert len(shards) == 2

    def test_faults_compose_with_retention(self, tmp_path):
        plan = FaultPlan(events=(rank_failure(10, 1),))
        cfg = chaos_config(tmp_path, world_size=2, max_checkpoints=2)
        result = train_with_faults(cfg, plan)
        assert result.interrupted_at is None
        assert result.final_step == 12
