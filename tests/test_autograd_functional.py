"""Gradient and semantics tests for the fused NN ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    IGNORE_INDEX,
    Tensor,
    apply_rope,
    check_gradients,
    cross_entropy,
    dropout,
    embedding,
    gelu,
    layer_norm,
    log_softmax,
    relu,
    rms_norm,
    rope_cache,
    silu,
    softmax,
)
from repro.util.errors import ShapeError


def t64(shape, rng, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True, dtype=np.float64)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        s = softmax(x).data
        np.testing.assert_allclose(s.sum(axis=-1), np.ones(4), rtol=1e-6)
        assert (s >= 0).all()

    def test_softmax_shift_invariance(self, rng):
        x = rng.standard_normal((3, 5))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_softmax_grad(self, rng):
        x = t64((3, 6), rng)
        check_gradients(lambda ts: (softmax(ts[0]) * np.arange(6)).sum(), [x])

    def test_log_softmax_grad_and_consistency(self, rng):
        x = t64((2, 5), rng)
        np.testing.assert_allclose(
            np.exp(log_softmax(Tensor(x.data)).data), softmax(Tensor(x.data)).data, rtol=1e-6
        )
        check_gradients(lambda ts: (log_softmax(ts[0]) * np.arange(5)).sum(), [x])


class TestCrossEntropy:
    def test_uniform_logits_give_log_vocab(self):
        logits = Tensor(np.zeros((2, 3, 8)), requires_grad=True)
        targets = np.zeros((2, 3), dtype=np.int64)
        loss = cross_entropy(logits, targets)
        np.testing.assert_allclose(float(loss.data), np.log(8), rtol=1e-6)

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((1, 2, 4), -30.0)
        logits[0, 0, 1] = 30.0
        logits[0, 1, 2] = 30.0
        loss = cross_entropy(Tensor(logits, requires_grad=True), np.array([[1, 2]]))
        assert float(loss.data) < 1e-6

    def test_ignore_index_excluded(self, rng):
        logits = rng.standard_normal((1, 4, 5))
        targets_full = np.array([[1, 2, 3, 4]])
        targets_masked = np.array([[1, 2, IGNORE_INDEX, IGNORE_INDEX]])
        l_masked = cross_entropy(Tensor(logits), targets_masked)
        l_manual = cross_entropy(Tensor(logits[:, :2]), targets_full[:, :2])
        np.testing.assert_allclose(float(l_masked.data), float(l_manual.data), rtol=1e-6)

    def test_ignored_positions_get_zero_grad(self, rng):
        logits = Tensor(rng.standard_normal((1, 3, 4)), requires_grad=True)
        targets = np.array([[0, IGNORE_INDEX, 2]])
        cross_entropy(logits, targets).backward()
        assert np.all(logits.grad[0, 1] == 0.0)
        assert np.any(logits.grad[0, 0] != 0.0)

    def test_all_ignored_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((1, 2, 3))), np.full((1, 2), IGNORE_INDEX))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((1, 2, 3))), np.zeros((1, 3), dtype=np.int64))

    def test_grad_matches_numerical(self, rng):
        logits = t64((6, 5), rng)
        targets = rng.integers(0, 5, size=6)
        check_gradients(lambda ts: cross_entropy(ts[0], targets), [logits])

    def test_grad_with_ignore(self, rng):
        logits = t64((5, 4), rng)
        targets = np.array([0, IGNORE_INDEX, 2, 3, IGNORE_INDEX])
        check_gradients(lambda ts: cross_entropy(ts[0], targets), [logits])


class TestActivations:
    def test_silu_values(self):
        x = Tensor(np.array([0.0, 100.0]))
        out = silu(x).data
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[1], 100.0, rtol=1e-5)

    def test_silu_gelu_relu_grads(self, rng):
        x = t64((7,), rng)
        check_gradients(lambda ts: silu(ts[0]).sum(), [x])
        check_gradients(lambda ts: gelu(ts[0]).sum(), [x])
        x_off_zero = Tensor(x.data + 0.05, requires_grad=True, dtype=np.float64)
        check_gradients(lambda ts: relu(ts[0]).sum(), [x_off_zero], eps=1e-8)


class TestNorms:
    def test_rms_norm_unit_scale(self, rng):
        x = rng.standard_normal((2, 3, 8)) * 5
        w = Tensor(np.ones(8))
        out = rms_norm(Tensor(x), w).data
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, np.ones((2, 3)), rtol=1e-3)

    def test_rms_norm_weight_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            rms_norm(Tensor(rng.standard_normal((2, 4))), Tensor(np.ones(5)))

    def test_rms_norm_grads(self, rng):
        x = t64((3, 6), rng)
        w = Tensor(rng.standard_normal(6) + 1.0, requires_grad=True, dtype=np.float64)
        check_gradients(lambda ts: (rms_norm(ts[0], ts[1]) ** 2).sum(), [x, w], atol=1e-4)

    def test_layer_norm_zero_mean_unit_var(self, rng):
        x = rng.standard_normal((4, 10)) * 3 + 7
        out = layer_norm(Tensor(x), Tensor(np.ones(10)), Tensor(np.zeros(10))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), rtol=1e-2)

    def test_layer_norm_grads(self, rng):
        x = t64((2, 5), rng)
        w = Tensor(rng.standard_normal(5) + 1, requires_grad=True, dtype=np.float64)
        b = Tensor(rng.standard_normal(5), requires_grad=True, dtype=np.float64)
        check_gradients(lambda ts: (layer_norm(ts[0], ts[1], ts[2]) ** 2).sum(), [x, w, b], atol=1e-4)


class TestEmbedding:
    def test_gather_semantics(self, rng):
        w = Tensor(rng.standard_normal((10, 4)))
        ids = np.array([[1, 3], [3, 9]])
        out = embedding(w, ids).data
        np.testing.assert_array_equal(out[0, 0], w.data[1])
        np.testing.assert_array_equal(out[1, 1], w.data[9])

    def test_duplicate_ids_accumulate_grad(self, rng):
        w = Tensor(rng.standard_normal((5, 3)), requires_grad=True, dtype=np.float64)
        ids = np.array([[2, 2, 2]])
        embedding(w, ids).sum().backward()
        np.testing.assert_allclose(w.grad[2], np.full(3, 3.0))
        np.testing.assert_allclose(w.grad[0], np.zeros(3))

    def test_float_ids_rejected(self, rng):
        with pytest.raises(ShapeError):
            embedding(Tensor(rng.standard_normal((4, 2))), np.array([0.5]))

    def test_grad_numerical(self, rng):
        w = t64((6, 3), rng)
        ids = rng.integers(0, 6, size=(2, 4))
        check_gradients(lambda ts: (embedding(ts[0], ids) ** 2).sum(), [w])


class TestRoPE:
    def test_cache_shapes_and_bounds(self):
        cos, sin = rope_cache(16, 8)
        assert cos.shape == sin.shape == (16, 8)
        assert np.abs(cos).max() <= 1.0 + 1e-6

    def test_odd_head_dim_rejected(self):
        with pytest.raises(ShapeError):
            rope_cache(4, 7)

    def test_rotation_preserves_norm(self, rng):
        cos, sin = rope_cache(10, 8, dtype=np.float64)
        x = rng.standard_normal((2, 3, 10, 8))
        out = apply_rope(Tensor(x, dtype=np.float64), cos, sin).data
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-6
        )

    def test_position_zero_is_identity(self, rng):
        cos, sin = rope_cache(4, 8, dtype=np.float64)
        x = rng.standard_normal((1, 1, 4, 8))
        out = apply_rope(Tensor(x, dtype=np.float64), cos, sin).data
        np.testing.assert_allclose(out[0, 0, 0], x[0, 0, 0], rtol=1e-9)

    def test_grad_numerical(self, rng):
        cos, sin = rope_cache(5, 4, dtype=np.float64)
        x = t64((2, 5, 4), rng)
        check_gradients(lambda ts: (apply_rope(ts[0], cos, sin) ** 2).sum(), [x])


class TestDropout:
    def test_identity_when_eval_or_zero(self, rng):
        x = Tensor(rng.standard_normal(10), requires_grad=True)
        assert dropout(x, 0.5, rng, training=False) is x
        assert dropout(x, 0.0, rng, training=True) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100_000))
        out = dropout(x, 0.3, rng).data
        assert abs(out.mean() - 1.0) < 0.02

    def test_p_one_rejected(self, rng):
        with pytest.raises(ShapeError):
            dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_grad_uses_same_mask(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones(50), requires_grad=True)
        out = dropout(x, 0.5, rng)
        out.sum().backward()
        np.testing.assert_array_equal((x.grad != 0), (out.data != 0))
